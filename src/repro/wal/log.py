"""The append-only segment log: framing, rotation, fsync, validation.

Layout
------
A log is a directory of segment files named ``wal-<base LSN>.wal``.
Every segment starts with a fixed header::

    magic     b"RWAL"   4 bytes
    version   u16       (currently 1)
    base_lsn  u64       first LSN appended to this segment

followed by a run of framed records::

    magic     b"RWRC"   4 bytes
    body_len  u32
    crc32     u32       zlib.crc32 of the body
    body      body_len bytes

and a record body is, in :mod:`repro.service.codec` primitives::

    kind      u8        1 ingest batch / 2 engine state
    lsn       u64       log-wide monotone sequence number
    name      text      engine name (u64 length + utf-8)
    version   u64       per-engine version assigned at plan time
    payload   rest      kind 1: repro.server.wire batch blob (RBAT)
                        kind 2: repro.service.codec engine blob (RSVC)

Integrity policy
----------------
Appends are atomic at record granularity only as far as the OS allows,
so a crash can tear the *final* record: leave a short frame header, a
body shorter than its declared length, or a checksum mismatch at end of
file.  Those anomalies — in the last position of the last segment, with
no intact record after them — are torn tails: tolerated and truncated.
Everything else (anomalies in sealed segments, an anomaly followed by an
intact record, an LSN gap, a checksummed body that fails to decode)
raises :class:`~repro.exceptions.WalCorruptionError` naming the segment
file and byte offset.  A checksum-valid record is never reinterpreted;
a checksum-invalid region is never skipped over.

Durability policy (``fsync``)
-----------------------------
``always``
    flush + ``os.fsync`` after every append: an acknowledged batch
    survives power loss.
``interval``
    flush after every append (bounding loss to OS-cache lifetime on
    process crash), ``os.fsync`` at most every ``fsync_interval``
    seconds plus on rotation and close: the serving default.
``off``
    flush only, never fsync: benchmarking / throwaway stores.
"""

from __future__ import annotations

import os
import struct
import threading
import time
import zlib
from pathlib import Path
from typing import IO, NamedTuple

from repro.exceptions import (
    InvalidParameterError,
    SketchCodecError,
    WalCorruptionError,
)
from repro.obs import LatencyHistogram
from repro.service.codec import Reader, Writer
from repro.server.wire import encode_batches

__all__ = [
    "FSYNC_POLICIES",
    "RECORD_BATCH",
    "RECORD_ENGINE",
    "RECORD_HEADER_BYTES",
    "SEGMENT_HEADER_BYTES",
    "WalRecord",
    "WriteAheadLog",
    "decode_tail",
]

SEGMENT_MAGIC = b"RWAL"
SEGMENT_VERSION = 1
#: segment magic + u16 version + u64 base LSN
SEGMENT_HEADER_BYTES = 14

RECORD_MAGIC = b"RWRC"
#: record magic + u32 body length + u32 crc32
RECORD_HEADER_BYTES = 12

#: record kinds
RECORD_BATCH = 1
RECORD_ENGINE = 2

FSYNC_POLICIES = ("always", "interval", "off")

_SEGMENT_SUFFIX = ".wal"
_U16 = struct.Struct("<H")
_U32 = struct.Struct("<I")
_U64 = struct.Struct("<Q")


class WalRecord(NamedTuple):
    """One decoded log record."""

    kind: int
    lsn: int
    name: str
    version: int
    payload: bytes


class _TailAnomaly(Exception):
    """Internal: the frame scan hit something torn-tail-shaped.

    Whether it really *is* a torn tail (tolerated) or mid-log corruption
    (fatal) is decided by the caller from the anomaly's position.
    """

    def __init__(self, offset: int, reason: str) -> None:
        super().__init__(reason)
        self.offset = offset
        self.reason = reason


class _SegmentScan(NamedTuple):
    base_lsn: int
    records: list[WalRecord]
    frames: list[bytes]
    clean_end: int
    torn_offset: int | None


def _encode_record(
    kind: int, lsn: int, name: str, version: int, payload: bytes
) -> bytes:
    writer = Writer()
    writer.u8(kind)
    writer.u64(lsn)
    writer.text(name)
    writer.u64(version)
    writer.raw(payload)
    body = writer.getvalue()
    return (
        RECORD_MAGIC
        + _U32.pack(len(body))
        + _U32.pack(zlib.crc32(body))
        + body
    )


def _decode_body(body: bytes, where: str) -> WalRecord:
    """Decode a checksum-verified record body.

    The checksum already passed, so any decode failure here means the
    writer and reader disagree about the format — fatal, never a torn
    tail.
    """
    reader = Reader(body)
    try:
        kind = reader.u8()
        lsn = reader.u64()
        name = reader.text()
        version = reader.u64()
        payload = reader.raw(reader.remaining)
    except SketchCodecError as exc:
        raise WalCorruptionError(
            f"{where}: checksummed record body fails to decode: {exc}"
        ) from exc
    if kind not in (RECORD_BATCH, RECORD_ENGINE):
        raise WalCorruptionError(f"{where}: unknown record kind {kind}")
    return WalRecord(kind, lsn, name, version, bytes(payload))


def _parse_frame(data: bytes, offset: int) -> tuple[bytes, int]:
    """``(body, end offset)`` of the frame at ``offset``.

    Raises :class:`_TailAnomaly` when the bytes at ``offset`` do not
    hold one complete, checksum-valid frame.
    """
    if len(data) - offset < RECORD_HEADER_BYTES:
        raise _TailAnomaly(
            offset,
            f"{len(data) - offset} trailing bytes are shorter than a "
            f"{RECORD_HEADER_BYTES}-byte record header",
        )
    if data[offset : offset + 4] != RECORD_MAGIC:
        raise _TailAnomaly(
            offset, f"bad record magic {data[offset : offset + 4]!r}"
        )
    (body_len,) = _U32.unpack_from(data, offset + 4)
    (crc,) = _U32.unpack_from(data, offset + 8)
    end = offset + RECORD_HEADER_BYTES + body_len
    if end > len(data):
        raise _TailAnomaly(
            offset,
            f"record body of {body_len} bytes extends {end - len(data)} "
            "bytes past end of segment",
        )
    body = data[offset + RECORD_HEADER_BYTES : end]
    if zlib.crc32(body) != crc:
        raise _TailAnomaly(offset, "record checksum mismatch")
    return body, end


def _find_intact_frame_after(data: bytes, offset: int) -> int | None:
    """Offset of the first complete, checksum-valid frame strictly after
    ``offset``, if any — the torn-tail-vs-corruption discriminator."""
    probe = data.find(RECORD_MAGIC, offset + 1)
    while probe != -1:
        try:
            _parse_frame(data, probe)
        except _TailAnomaly:
            probe = data.find(RECORD_MAGIC, probe + 1)
        else:
            return probe
    return None


def _scan_segment(
    path: Path, data: bytes, prev_lsn: int | None, final: bool
) -> _SegmentScan:
    """Validate one segment and decode its records.

    ``final`` marks the last segment of the log — the only place a torn
    tail may legitimately appear.  ``prev_lsn`` (when known) checks base
    continuity against the previous segment.  A final segment whose
    header itself was torn scans as ``base_lsn == -1`` with no records.
    """
    size = len(data)
    if size < SEGMENT_HEADER_BYTES:
        if final:
            return _SegmentScan(-1, [], [], 0, 0)
        raise WalCorruptionError(
            f"{path}: sealed segment shorter than its "
            f"{SEGMENT_HEADER_BYTES}-byte header ({size} bytes)"
        )
    if data[:4] != SEGMENT_MAGIC:
        raise WalCorruptionError(
            f"{path}: bad segment magic {data[:4]!r} at offset 0"
        )
    (segment_version,) = _U16.unpack_from(data, 4)
    if segment_version != SEGMENT_VERSION:
        raise WalCorruptionError(
            f"{path}: unsupported segment version {segment_version}; this "
            f"build reads version {SEGMENT_VERSION}"
        )
    (base_lsn,) = _U64.unpack_from(data, 6)
    if prev_lsn is not None and base_lsn != prev_lsn + 1:
        raise WalCorruptionError(
            f"{path}: segment base LSN {base_lsn} does not continue the "
            f"log (previous record was LSN {prev_lsn})"
        )
    records: list[WalRecord] = []
    frames: list[bytes] = []
    offset = SEGMENT_HEADER_BYTES
    expected = base_lsn
    torn_offset: int | None = None
    while offset < size:
        try:
            body, end = _parse_frame(data, offset)
        except _TailAnomaly as anomaly:
            if not final:
                raise WalCorruptionError(
                    f"{path}: corrupt record at offset {anomaly.offset} in "
                    f"a sealed segment: {anomaly.reason}"
                ) from None
            intact_after = _find_intact_frame_after(data, anomaly.offset)
            if intact_after is not None:
                raise WalCorruptionError(
                    f"{path}: corrupt record at offset {anomaly.offset} "
                    f"({anomaly.reason}) followed by an intact record at "
                    f"offset {intact_after}; mid-log corruption is not a "
                    "torn tail — refusing to replay"
                ) from None
            torn_offset = anomaly.offset
            break
        record = _decode_body(body, f"{path} offset {offset}")
        if record.lsn != expected:
            raise WalCorruptionError(
                f"{path}: record at offset {offset} carries LSN "
                f"{record.lsn} where {expected} was expected — "
                "checksum-valid but out of sequence; refusing to replay"
            )
        records.append(record)
        frames.append(data[offset:end])
        expected += 1
        offset = end
    clean_end = offset if torn_offset is None else torn_offset
    return _SegmentScan(base_lsn, records, frames, clean_end, torn_offset)


def decode_tail(data: bytes) -> list[WalRecord]:
    """Decode a shipped tail (concatenated record frames), strictly.

    A replica tail travels over HTTP, not a crashing disk, so nothing
    torn is tolerated: any framing or checksum failure raises
    :class:`~repro.exceptions.WalCorruptionError`.
    """
    records: list[WalRecord] = []
    offset = 0
    while offset < len(data):
        try:
            body, end = _parse_frame(data, offset)
        except _TailAnomaly as anomaly:
            raise WalCorruptionError(
                f"replica tail: corrupt record at offset {anomaly.offset}: "
                f"{anomaly.reason}"
            ) from None
        records.append(_decode_body(body, f"replica tail offset {offset}"))
        offset = end
    return records


class WriteAheadLog:
    """Append-only, CRC-framed, segment-rotated ingest log.

    Opening a directory that already holds segments resumes the log:
    the final segment is validated, a torn tail (if any) is truncated,
    and appends continue from the next LSN.  All methods are
    thread-safe; appends serialize on one internal lock.

    Examples
    --------
    ::

        wal = WriteAheadLog(data_dir / "wal", fsync="always")
        store.attach_wal(wal)           # ingests now append-before-apply
        ...
        store.snapshot_marked(path)     # checkpoints (truncates) the log
    """

    def __init__(
        self,
        directory: str | Path,
        *,
        fsync: str = "interval",
        fsync_interval: float = 0.05,
        segment_bytes: int = 64 * 1024 * 1024,
    ) -> None:
        if fsync not in FSYNC_POLICIES:
            raise InvalidParameterError(
                f"fsync policy must be one of {FSYNC_POLICIES}, got "
                f"{fsync!r}"
            )
        if float(fsync_interval) < 0:
            raise InvalidParameterError(
                f"fsync_interval must be >= 0, got {fsync_interval}"
            )
        if int(segment_bytes) <= SEGMENT_HEADER_BYTES:
            raise InvalidParameterError(
                f"segment_bytes must exceed the {SEGMENT_HEADER_BYTES}-byte "
                f"segment header, got {segment_bytes}"
            )
        self.directory = Path(directory)
        self.fsync_policy = fsync
        self.fsync_interval = float(fsync_interval)
        self.segment_bytes = int(segment_bytes)
        #: fsync wall-time distribution (mergeable, quantile-queryable)
        self.fsync_histogram = LatencyHistogram()
        self._lock = threading.Lock()
        self._handle: IO[bytes] | None = None
        #: ``(base LSN, path)`` per segment, ascending; the last is open
        self._segments: list[tuple[int, Path]] = []
        self._segment_size = 0
        self._last_lsn = 0
        self._checkpoint_lsn = 0
        self._appended_records = 0
        self._appended_bytes = 0
        self._fsync_count = 0
        self._fsync_seconds = 0.0
        self._last_fsync = time.monotonic()
        # checkpoint age is measured from log open: a freshly opened log
        # that never checkpoints is exactly as replay-heavy as its age
        self._last_checkpoint = time.monotonic()
        self._replay_seconds: float | None = None
        self._replayed_records = 0
        self._torn_tail: str | None = None
        self._open_directory()

    # ------------------------------------------------------------------
    # Opening / segment management
    # ------------------------------------------------------------------
    def _open_directory(self) -> None:
        self.directory.mkdir(parents=True, exist_ok=True)
        for path in sorted(self.directory.glob(f"wal-*{_SEGMENT_SUFFIX}")):
            try:
                base = int(path.stem.partition("-")[2])
            except ValueError:
                raise WalCorruptionError(
                    f"{path}: segment file name does not encode a base LSN"
                ) from None
            self._segments.append((base, path))
        self._segments.sort()
        if not self._segments:
            self._create_segment(1)
            return
        base, path = self._segments[-1]
        data = path.read_bytes()
        scan = _scan_segment(path, data, None, final=True)
        if scan.base_lsn == -1:
            # the header write itself was torn; the file name still
            # encodes the base LSN, so rewrite the header in place
            self._torn_tail = f"{path}: torn segment header"
            with path.open("wb") as handle:
                handle.write(self._segment_header(base))
            self._last_lsn = base - 1
            self._segment_size = SEGMENT_HEADER_BYTES
        else:
            if scan.base_lsn != base:
                raise WalCorruptionError(
                    f"{path}: file name encodes base LSN {base} but the "
                    f"segment header says {scan.base_lsn}"
                )
            if scan.torn_offset is not None:
                self._torn_tail = (
                    f"{path}: torn tail truncated at offset "
                    f"{scan.torn_offset}"
                )
                os.truncate(path, scan.clean_end)
            self._last_lsn = (
                scan.records[-1].lsn if scan.records else base - 1
            )
            self._segment_size = scan.clean_end
        self._handle = path.open("ab")

    @staticmethod
    def _segment_header(base_lsn: int) -> bytes:
        return SEGMENT_MAGIC + _U16.pack(SEGMENT_VERSION) + _U64.pack(base_lsn)

    def _create_segment(self, base_lsn: int) -> None:
        path = self.directory / f"wal-{base_lsn:020d}{_SEGMENT_SUFFIX}"
        with path.open("wb") as handle:
            handle.write(self._segment_header(base_lsn))
            handle.flush()
            if self.fsync_policy != "off":
                os.fsync(handle.fileno())
        self._fsync_directory()
        self._segments.append((base_lsn, path))
        self._handle = path.open("ab")
        self._segment_size = SEGMENT_HEADER_BYTES

    def _fsync_directory(self) -> None:
        # a created or deleted segment only survives power loss once the
        # directory entry itself is durable
        if self.fsync_policy == "off":
            return
        try:
            fd = os.open(self.directory, os.O_RDONLY)
        except OSError:
            return
        try:
            os.fsync(fd)
        except OSError:
            pass
        finally:
            os.close(fd)

    # ------------------------------------------------------------------
    # Appending
    # ------------------------------------------------------------------
    def append_batch(
        self, name: str, version: int, instance: object, keys, values
    ) -> int:
        """Append one ingest batch; returns its LSN.

        ``version`` is the per-engine version the batch will have once
        applied — the idempotence key replay checks against snapshot
        marks.
        """
        payload = encode_batches([(instance, keys, values)])
        return self.append_batch_blob(name, version, payload)

    def append_batch_blob(self, name: str, version: int, payload: bytes) -> int:
        """Append an already wire-encoded batch payload; returns its LSN.

        The multiprocess dispatch path encodes a batch once and reuses
        the same bytes for the log record and the worker rings, so the
        record body is the :func:`repro.server.wire.encode_batches`
        blob the caller already holds.
        """
        return self._append(RECORD_BATCH, name, version, bytes(payload))

    def append_engine(self, name: str, version: int, engine_blob: bytes) -> int:
        """Append a full engine-state record (create / merge / adopt);
        returns its LSN."""
        return self._append(RECORD_ENGINE, name, version, bytes(engine_blob))

    def _append(self, kind: int, name: str, version: int, payload: bytes) -> int:
        if not isinstance(name, str) or not name:
            raise InvalidParameterError(
                f"WAL records require a non-empty engine name, got {name!r}"
            )
        with self._lock:
            if self._handle is None:
                raise InvalidParameterError("the write-ahead log is closed")
            lsn = self._last_lsn + 1
            frame = _encode_record(kind, lsn, name, int(version), payload)
            self._handle.write(frame)
            self._last_lsn = lsn
            self._segment_size += len(frame)
            self._appended_records += 1
            self._appended_bytes += len(frame)
            if self.fsync_policy == "always":
                self._fsync_locked()
            else:
                self._handle.flush()
                if (
                    self.fsync_policy == "interval"
                    and time.monotonic() - self._last_fsync
                    >= self.fsync_interval
                ):
                    self._fsync_locked()
            if self._segment_size >= self.segment_bytes:
                self._rotate_locked()
            return lsn

    def _fsync_locked(self) -> None:
        assert self._handle is not None
        started = time.perf_counter()
        self._handle.flush()
        os.fsync(self._handle.fileno())
        elapsed = time.perf_counter() - started
        self.fsync_histogram.observe(elapsed)
        self._fsync_count += 1
        self._fsync_seconds += elapsed
        self._last_fsync = time.monotonic()

    def _rotate_locked(self) -> None:
        if self._segment_size <= SEGMENT_HEADER_BYTES:
            return  # rotating an empty segment seals nothing
        assert self._handle is not None
        if self.fsync_policy != "off":
            self._fsync_locked()
        self._handle.close()
        self._create_segment(self._last_lsn + 1)

    def sync(self) -> None:
        """Force an fsync of the live segment now (any policy)."""
        with self._lock:
            if self._handle is not None:
                self._fsync_locked()

    def close(self) -> None:
        """Flush (and, unless ``fsync='off'``, fsync) and close."""
        with self._lock:
            if self._handle is None:
                return
            if self.fsync_policy != "off":
                self._fsync_locked()
            else:
                self._handle.flush()
            self._handle.close()
            self._handle = None

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def checkpoint(self, up_to_lsn: int) -> int:
        """Drop segments fully covered by a snapshot at ``up_to_lsn``.

        Seals the live segment (rotation), then deletes every sealed
        segment whose records all have LSN <= ``up_to_lsn``.  Records
        beyond the cutoff stay replayable; returns the number of deleted
        segments.
        """
        with self._lock:
            if self._handle is None:
                raise InvalidParameterError("the write-ahead log is closed")
            self._rotate_locked()
            self._checkpoint_lsn = max(self._checkpoint_lsn, int(up_to_lsn))
            self._last_checkpoint = time.monotonic()
            removed = 0
            while len(self._segments) > 1:
                _, path = self._segments[0]
                next_base = self._segments[1][0]
                if next_base - 1 > int(up_to_lsn):
                    break
                path.unlink(missing_ok=True)
                self._segments.pop(0)
                removed += 1
            if removed:
                self._fsync_directory()
            return removed

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def read_all(self) -> tuple[list[WalRecord], str | None]:
        """Every record in LSN order, plus a torn-tail note (or None).

        Raises :class:`~repro.exceptions.WalCorruptionError` on anything
        that is not a torn tail of the final segment.
        """
        with self._lock:
            if self._handle is not None:
                self._handle.flush()
            segments = list(self._segments)
            records: list[WalRecord] = []
            torn = self._torn_tail
            prev_lsn: int | None = None
            for index, (base, path) in enumerate(segments):
                final = index == len(segments) - 1
                scan = _scan_segment(
                    path, path.read_bytes(), prev_lsn, final=final
                )
                if scan.base_lsn == -1:
                    torn = f"{path}: torn segment header"
                    continue
                records.extend(scan.records)
                if scan.torn_offset is not None:
                    torn = (
                        f"{path}: torn tail at offset {scan.torn_offset}"
                    )
                prev_lsn = (
                    scan.records[-1].lsn
                    if scan.records
                    else scan.base_lsn - 1
                )
            return records, torn

    def tail_since(self, since: int) -> tuple[bytes, int] | None:
        """Raw record frames with LSN > ``since`` and the last LSN they
        run up to, or ``None`` when that tail was checkpointed away.

        The returned blob is a valid :func:`decode_tail` input; callers
        that get ``None`` must fall back to shipping full sketch state.
        """
        since = int(since)
        if since < 0:
            raise InvalidParameterError(f"since must be >= 0, got {since}")
        with self._lock:
            if self._handle is not None:
                self._handle.flush()
            if since + 1 < self._segments[0][0]:
                return None
            chunks: list[bytes] = []
            for index, (base, path) in enumerate(self._segments):
                final = index == len(self._segments) - 1
                upper = (
                    self._last_lsn
                    if final
                    else self._segments[index + 1][0] - 1
                )
                if upper <= since:
                    continue
                scan = _scan_segment(path, path.read_bytes(), None, final=final)
                if scan.torn_offset is not None:
                    # the live segment was flushed under this lock, so a
                    # short read here is on-disk damage, not a torn write
                    raise WalCorruptionError(
                        f"{path}: unreadable record at offset "
                        f"{scan.torn_offset} while shipping the tail"
                    )
                for record, frame in zip(scan.records, scan.frames):
                    if record.lsn > since:
                        chunks.append(frame)
            return b"".join(chunks), self._last_lsn

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def last_lsn(self) -> int:
        """LSN of the most recently appended record (0 when empty)."""
        return self._last_lsn

    @property
    def checkpoint_lsn(self) -> int:
        """Highest LSN a checkpoint has covered."""
        return self._checkpoint_lsn

    @property
    def torn_tail(self) -> str | None:
        """Description of the torn tail truncated at open, if any."""
        return self._torn_tail

    @property
    def checkpoint_age_seconds(self) -> float:
        """Seconds since the last checkpoint (or since the log was
        opened, when it never checkpointed) — a recovery-cost proxy:
        the older the checkpoint, the longer the replay tail."""
        return time.monotonic() - self._last_checkpoint

    def segment_paths(self) -> list[Path]:
        """Current segment files, oldest first (the last one is live)."""
        with self._lock:
            return [path for _, path in self._segments]

    def note_replay(self, seconds: float, records: int) -> None:
        """Record how long recovery replay took (reported by stats)."""
        with self._lock:
            self._replay_seconds = float(seconds)
            self._replayed_records = int(records)

    def stats(self) -> dict:
        """Counters for ``/metrics``: appends, fsyncs, segments, LSNs."""
        with self._lock:
            return {
                "directory": str(self.directory),
                "fsync_policy": self.fsync_policy,
                "appended_records": self._appended_records,
                "appended_bytes": self._appended_bytes,
                "fsync_count": self._fsync_count,
                "fsync_seconds": self._fsync_seconds,
                "segments": len(self._segments),
                "last_lsn": self._last_lsn,
                "checkpoint_lsn": self._checkpoint_lsn,
                "checkpoint_age_seconds": (
                    time.monotonic() - self._last_checkpoint
                ),
                "replay_seconds": self._replay_seconds,
                "replayed_records": self._replayed_records,
                "torn_tail": self._torn_tail,
            }
