"""Crash recovery: restore the last snapshot, replay the WAL tail.

The invariant that makes this exact: every log record carries the
per-engine version the store assigned at plan time, snapshots are taken
at quiescent points, and versions advance by one per applied batch — so
"apply iff ``record.version > store.version(name)``" replays precisely
the records whose effects the snapshot missed, in order, once.  The
recovered sketches are bit-for-bit the pre-crash state (checked by
``tests/wal/``, including at every possible torn-tail byte offset).
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import NamedTuple

from repro.exceptions import SketchCodecError, WalCorruptionError
from repro.server.wire import decode_batches
from repro.service import codec
from repro.service.store import SketchStore
from repro.wal.log import RECORD_BATCH, RECORD_ENGINE, WalRecord, WriteAheadLog

__all__ = ["RecoveryReport", "apply_records", "recover_store"]


class RecoveryReport(NamedTuple):
    """What :func:`recover_store` did, for operators and tests."""

    store: SketchStore
    snapshot_engines: int
    replayed_records: int
    replayed_rows: int
    skipped_records: int
    last_lsn: int
    torn_tail: str | None
    replay_seconds: float


def apply_records(
    store: SketchStore, records: list[WalRecord]
) -> tuple[int, int, int]:
    """Apply WAL records to ``store``; ``(applied, rows, skipped)``.

    Idempotent: records whose version the store has already reached are
    skipped, so replaying on top of a snapshot that contains some of the
    logged effects (the normal crash window) never double-applies.  Used
    both by recovery (records read from disk) and by replica catch-up
    (records shipped over ``/replicate``).

    A batch record naming an engine the store does not know — and that
    no earlier engine record created — means the log and the snapshot
    disagree about history, which is corruption, not a skippable detail.
    """
    applied = 0
    rows = 0
    skipped = 0
    for record in records:
        if record.kind == RECORD_ENGINE:
            if (
                record.name in store
                and record.version <= store.version(record.name)
            ):
                skipped += 1
                continue
            try:
                engine = codec.from_bytes(record.payload)
            except SketchCodecError as exc:
                raise WalCorruptionError(
                    f"engine record LSN {record.lsn} for "
                    f"{record.name!r} fails to decode: {exc}"
                ) from exc
            store.adopt(record.name, engine, version=record.version)
            applied += 1
            continue
        # RECORD_BATCH — log.py rejects any other kind at decode time
        if record.name not in store:
            raise WalCorruptionError(
                f"batch record LSN {record.lsn} names unknown engine "
                f"{record.name!r}; the log does not match the snapshot "
                "— refusing to replay"
            )
        if record.version <= store.version(record.name):
            skipped += 1
            continue
        try:
            batches = decode_batches(record.payload)
        except SketchCodecError as exc:
            raise WalCorruptionError(
                f"batch record LSN {record.lsn} for {record.name!r} "
                f"fails to decode: {exc}"
            ) from exc
        for batch in batches:
            store.replay_batch(
                record.name,
                batch.instance,
                batch.keys,
                batch.values,
                record.version,
            )
            rows += len(batch.keys)
        applied += 1
    return applied, rows, skipped


def recover_store(
    snapshot_path: str | Path | None, wal: WriteAheadLog
) -> RecoveryReport:
    """Restore ``snapshot_path`` (if it exists) and replay ``wal``.

    The returned store has *no* WAL attached — the caller decides
    whether to attach ``wal`` afterwards (the serve CLI does, after
    snapshotting the recovered state and checkpointing the log).  Any
    non-torn-tail damage raises
    :class:`~repro.exceptions.WalCorruptionError` before a single record
    is applied; a recovered store is never silently partial.
    """
    started = time.perf_counter()
    if snapshot_path is not None and Path(snapshot_path).exists():
        store = SketchStore.restore(snapshot_path)
    else:
        store = SketchStore()
    snapshot_engines = len(store.names())
    records, torn_tail = wal.read_all()
    applied, rows, skipped = apply_records(store, records)
    elapsed = time.perf_counter() - started
    wal.note_replay(elapsed, applied)
    return RecoveryReport(
        store=store,
        snapshot_engines=snapshot_engines,
        replayed_records=applied,
        replayed_rows=rows,
        skipped_records=skipped,
        last_lsn=wal.last_lsn,
        torn_tail=torn_tail,
        replay_seconds=elapsed,
    )
