"""Write-ahead log durability for the sketch store.

Snapshots (:meth:`repro.service.SketchStore.snapshot`) bound data loss
to "everything since the last snapshot"; this package closes that gap.
:class:`WriteAheadLog` is an append-only, CRC-framed, segment-rotated
log of ingest batches (in the :mod:`repro.server.wire` columnar format)
and engine-state records, with a configurable fsync policy.  A store
with an attached log appends every ingest batch *before* applying it,
so crash recovery — :func:`recover_store` — is restore-snapshot +
replay-tail and reproduces the pre-crash sketch state bit for bit.

Replay is idempotent: every record carries the per-engine version the
store assigned at plan time, and recovery skips records whose effects
the snapshot already contains.  Torn tail writes (an append interrupted
mid-record) are detected by checksum and truncated; any *other*
corruption — a flipped bit in the middle of a segment, a sequence gap,
a checksummed record that decodes to garbage — raises
:class:`~repro.exceptions.WalCorruptionError` with file and offset
context, so a damaged log fails loudly instead of silently serving
partial data.
"""

from repro.exceptions import WalCorruptionError
from repro.wal.log import (
    FSYNC_POLICIES,
    RECORD_BATCH,
    RECORD_ENGINE,
    WalRecord,
    WriteAheadLog,
    decode_tail,
)
from repro.wal.recovery import RecoveryReport, apply_records, recover_store

__all__ = [
    "FSYNC_POLICIES",
    "RECORD_BATCH",
    "RECORD_ENGINE",
    "RecoveryReport",
    "WalCorruptionError",
    "WalRecord",
    "WriteAheadLog",
    "apply_records",
    "decode_tail",
    "recover_store",
]
