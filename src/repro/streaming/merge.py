"""Merging streaming sketches (shard-and-reduce parallelism).

Because ranks are deterministic functions of ``(key, accumulated value,
seed)``, sketches are *mergeable*: the sketch of a union of streams is
computable from the sketches of the parts.  Merging is associative,
commutative and insensitive to how the stream was split, as long as the
parts partition the updates — the precondition the sharding engine
guarantees by routing each key to exactly one shard.

For bottom-k, exactness follows from the candidate-set argument: the
``k + 1`` smallest ranks of a union are contained in the union of the
``k + 1`` smallest ranks of the parts, so no information needed by the
merged sketch is ever dropped by a part.  For Poisson the retained sets are
unions outright.

Keys that appear in several parts (possible when a stream is split by
arrival order rather than by key) are combined additively, inheriting the
additive-update contract of :mod:`repro.streaming.sketch`.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.exceptions import InvalidParameterError
from repro.streaming.sketch import StreamingBottomK, StreamingPoisson

__all__ = ["merge_bottom_k", "merge_poisson", "merge_sketches"]


def _check_compatible(a, b) -> None:
    if type(a) is not type(b):
        raise InvalidParameterError(
            f"cannot merge sketches of types {type(a).__name__} and "
            f"{type(b).__name__}"
        )
    if a.instance != b.instance:
        raise InvalidParameterError(
            "cannot merge sketches of different instances "
            f"({a.instance!r} and {b.instance!r})"
        )
    if type(a.rank_family) is not type(b.rank_family):
        raise InvalidParameterError(
            "cannot merge sketches with different rank families "
            f"({a.rank_family.name} and {b.rank_family.name})"
        )
    sa, sb = a.seed_assigner, b.seed_assigner
    if sa.salt != sb.salt or sa.coordinated != sb.coordinated:
        raise InvalidParameterError(
            "cannot merge sketches with different seed assignments"
        )


def merge_bottom_k(
    first: StreamingBottomK, *others: StreamingBottomK
) -> StreamingBottomK:
    """Merge bottom-k sketches of the same instance into a new sketch.

    The inputs are left untouched.  The result equals the single sketch of
    the concatenated streams whenever the parts partition the key space.
    """
    merged = StreamingBottomK(
        k=first.k,
        instance=first.instance,
        rank_family=first.rank_family,
        seed_assigner=first.seed_assigner,
    )
    for part in (first, *others):
        _check_compatible(first, part)
        if part.k != first.k:
            raise InvalidParameterError(
                f"cannot merge bottom-k sketches with k={first.k} and "
                f"k={part.k}"
            )
        seeds = part._seeds
        for key, value in part._values.items():
            merged._ingest(key, value, seeds[key])
        merged.n_updates += part.n_updates
        merged.n_discarded_keys += part.n_discarded_keys
    return merged


def merge_poisson(
    first: StreamingPoisson, *others: StreamingPoisson
) -> StreamingPoisson:
    """Merge Poisson sketches of the same instance into a new sketch."""
    merged = StreamingPoisson(
        threshold=first.threshold,
        instance=first.instance,
        rank_family=first.rank_family,
        seed_assigner=first.seed_assigner,
    )
    for part in (first, *others):
        _check_compatible(first, part)
        if part.threshold != first.threshold:
            raise InvalidParameterError(
                "cannot merge Poisson sketches with thresholds "
                f"{first.threshold} and {part.threshold}"
            )
        for key, value in part._values.items():
            old = merged._values.get(key)
            if old is None:
                merged._values[key] = value
                merged._ranks[key] = part._ranks[key]
            else:
                total = old + value
                merged._values[key] = total
                merged._ranks[key] = merged._rank(
                    total, merged.seed_assigner.seed(key, instance=merged.instance)
                )
        merged.n_updates += part.n_updates
        merged.n_discarded_keys += part.n_discarded_keys
    return merged


def merge_sketches(sketches: Iterable):
    """Merge an iterable of same-kind sketches (at least one is required)."""
    sketches = list(sketches)
    if not sketches:
        raise InvalidParameterError("at least one sketch is required")
    first = sketches[0]
    if isinstance(first, StreamingBottomK):
        return merge_bottom_k(*sketches)
    if isinstance(first, StreamingPoisson):
        return merge_poisson(*sketches)
    raise InvalidParameterError(
        f"cannot merge objects of type {type(first).__name__}"
    )
