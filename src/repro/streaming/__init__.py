"""Streaming coordinated-sketch engine.

The offline pipeline materialises every instance before sampling it; this
subpackage maintains the same coordinated summaries *online* over unbounded
streams of ``(instance, key, value)`` updates:

* :mod:`repro.streaming.sketch` — heap-backed :class:`StreamingBottomK`
  (O(log k) per update) and :class:`StreamingPoisson` sketches, seeded
  through the shared :class:`~repro.sampling.seeds.SeedAssigner` so sketches
  of different instances stay coordinated;
* :mod:`repro.streaming.merge` — associative, commutative sketch merging,
  the algebra behind shard-and-reduce parallelism;
* :mod:`repro.streaming.engine` — :class:`StreamEngine`, batched NumPy
  ingestion sharded by key hash with optional executor parallelism;
* :mod:`repro.streaming.query` — adapters producing
  :class:`~repro.sampling.outcomes.VectorOutcome` families and
  :class:`~repro.aggregates.dataset.MultiInstanceDataset` views so the
  offline estimators (``max^(L)``, the OR family, rank conditioning,
  distinct count, dominance, L1 distance) run on sketch output unchanged.

For any fixed seed assignment the streaming sketches are *exact*: the
sketch of an instance equals the offline sample of the accumulated data,
and merging per-shard sketches equals the single-pass sketch.
"""

from repro.streaming.engine import StreamEngine
from repro.streaming.merge import merge_bottom_k, merge_poisson, merge_sketches
from repro.streaming.query import (
    StreamingDominanceEstimate,
    dataset_view,
    distinct_count,
    l1_distance,
    max_dominance,
    rank_conditioning_total,
    sum_aggregate,
    vector_outcomes,
)
from repro.streaming.sketch import StreamingBottomK, StreamingPoisson

__all__ = [
    "StreamEngine",
    "StreamingBottomK",
    "StreamingPoisson",
    "StreamingDominanceEstimate",
    "merge_bottom_k",
    "merge_poisson",
    "merge_sketches",
    "dataset_view",
    "distinct_count",
    "l1_distance",
    "max_dominance",
    "rank_conditioning_total",
    "sum_aggregate",
    "vector_outcomes",
]
