"""Streaming coordinated sketches of single instances.

The offline pipeline materialises every instance as a ``{key: value}``
mapping before sampling it.  The sketches here maintain the *same* summaries
incrementally over an unbounded stream of ``(key, value)`` updates:

:class:`StreamingBottomK`
    A heap-backed bottom-k sketch.  It keeps the ``k + 1`` keys of smallest
    rank seen so far (the sample plus the threshold candidate), so for any
    prefix of the stream its :meth:`~StreamingBottomK.to_sample` equals the
    offline :func:`repro.sampling.bottomk.bottom_k_sample` of the
    accumulated data — entries, ranks and threshold — under the same seed
    assignment.  Per-update cost is O(log k).

:class:`StreamingPoisson`
    A Poisson-``tau`` sketch: it retains exactly the keys whose rank is
    below the fixed threshold, for any of the rank families (PPS,
    exponential, or the weight-oblivious :class:`UniformRanks`).

Both sketches draw seeds from a :class:`repro.sampling.seeds.SeedAssigner`,
so sketches of different instances built from a ``coordinated=True``
assigner share per-key seeds exactly like the offline coordinated samples,
and sketches are deterministic functions of the accumulated data — the
property that makes them mergeable (see :mod:`repro.streaming.merge`).

Bulk columns of updates go through :meth:`_StreamingSketch.update_many`,
the chunked NumPy fast path: each chunk is hashed, seeded and ranked in one
vectorised pass, and a "clean" chunk (distinct keys, none already retained)
is folded into the sketch wholesale — one ``argpartition`` selects the
bottom-k survivors, a threshold mask the Poisson ones — with the heap
rebuilt only at chunk boundaries.  Chunks that replay retained keys or
contain duplicates drop to the exact per-row loop, so the resulting sketch
state is always identical to a sequence of scalar :meth:`update` calls,
discard counter included.

Update semantics are *additive*: repeated updates of a key accumulate.
Because ranks are nonincreasing in the value for every rank family, a key
that is retained by the sketch stays retained as its value grows, and its
rank is recomputed exactly from the accumulated total.  The sketch is exact
whenever each key's total arrives while the key is retained (in particular
when each key appears once per stream, the pre-aggregated model used by the
equivalence tests); only a key that was evicted and later reappears loses
its earlier mass.  :attr:`n_discarded_keys` counts evictions so callers can
detect the approximate regime.
"""

from __future__ import annotations

import heapq
from collections.abc import Iterable, Mapping, Sequence

import numpy as np

from repro.exceptions import InvalidParameterError
from repro.sampling.bottomk import BottomKSample
from repro.sampling.poisson import PoissonSample
from repro.sampling.ranks import (
    ExpRanks,
    RankFamily,
    UniformRanks,
    rank_family_from_name,
)
from repro.sampling.seeds import SeedAssigner, key_hashes

__all__ = ["StreamingBottomK", "StreamingPoisson", "sketch_from_state"]


def _validate_values(values: np.ndarray) -> None:
    """Reject non-finite or negative values in one vectorised pass.

    NaN fails every ordering comparison, so ``values.min() < 0`` alone
    would wave NaN (and infinities) through into the rank computation and
    silently break the sketch heap invariants.
    """
    if not values.size:
        return
    finite = np.isfinite(values)
    if not finite.all():
        bad = int(np.flatnonzero(~finite)[0])
        raise InvalidParameterError(
            f"update values must be finite, got {float(values[bad])!r} at row {bad}"
        )
    if float(values.min()) < 0.0:
        raise InvalidParameterError("values must be nonnegative")


class _StreamingSketch:
    """State shared by the streaming sketches: seeds, counters, batching."""

    def __init__(
        self,
        instance: object,
        rank_family: RankFamily | None,
        seed_assigner: SeedAssigner | None,
    ) -> None:
        self.instance = instance
        self.rank_family = rank_family if rank_family is not None else ExpRanks()
        self.seed_assigner = (
            seed_assigner if seed_assigner is not None else SeedAssigner()
        )
        #: number of updates ingested (including rejected ones)
        self.n_updates = 0
        #: number of retained keys evicted/rejected after carrying positive
        #: value — when zero, the sketch is exact for the accumulated data
        self.n_discarded_keys = 0

    def _rank(self, value: float, seed: float) -> float:
        return float(self.rank_family.rank(value, seed))

    def update(self, key: object, value: float) -> None:
        """Ingest a single ``(key, value)`` update."""
        value = float(value)
        # ``value < 0`` is False for NaN, so check finiteness explicitly:
        # a NaN rank would break every heap comparison downstream.
        if value != value or value in (float("inf"), float("-inf")):
            raise InvalidParameterError(
                f"update values must be finite, got {value!r}"
            )
        if value < 0.0:
            raise InvalidParameterError("values must be nonnegative")
        self.n_updates += 1
        if value == 0.0:
            return
        seed = float(self.seed_assigner.seed(key, instance=self.instance))
        self._ingest(key, value, seed)

    def _prepare_batch(
        self,
        keys: Sequence[object],
        values,
        hashes: np.ndarray | None,
    ) -> tuple[list, np.ndarray, np.ndarray]:
        """Validate a batch and compute its seeds in one vectorised pass.

        ``hashes`` lets callers that already hashed the key column (the
        sharding engine) skip rehashing it.
        """
        keys = list(keys)
        values = np.asarray(values, dtype=float)
        if values.shape != (len(keys),):
            raise InvalidParameterError(
                "keys and values must have matching length"
            )
        _validate_values(values)
        if hashes is None:
            hashes = key_hashes(keys)
        seeds = self.seed_assigner.seeds_from_hashes(
            hashes, instance=self.instance
        )
        self.n_updates += len(keys)
        return keys, values, seeds

    def extend(self, stream: Iterable[tuple[object, float]]) -> None:
        """Ingest an iterable of ``(key, value)`` updates."""
        for key, value in stream:
            self.update(key, value)

    def update_many(
        self,
        keys: Sequence[object],
        values,
        chunk_size: int = 16384,
        hashes: np.ndarray | None = None,
    ) -> None:
        """Chunked NumPy fast path over parallel ``keys`` / ``values``
        columns.

        Each chunk is hashed, seeded and ranked in one vectorised pass;
        when a chunk is "clean" (distinct keys, none already retained) the
        whole chunk is folded into the sketch with array operations —
        ``argpartition`` selects the surviving candidates for bottom-k, a
        threshold mask for Poisson — and per-key Python work happens only
        for the retained minority.  Chunks that replay retained keys or
        contain duplicates fall back to the exact per-row loop, so the
        final sketch state (entries, ranks, threshold, discard counter) is
        always identical to a sequence of :meth:`update` calls.
        """
        if chunk_size <= 0:
            raise InvalidParameterError(
                f"chunk_size must be positive, got {chunk_size}"
            )
        if not isinstance(keys, np.ndarray):
            # a NumPy key column stays an array: chunk slices below are
            # views, and the vectorised hash path can consume it directly
            keys = list(keys)
        values = np.asarray(values, dtype=float)
        if values.shape != (len(keys),):
            raise InvalidParameterError(
                "keys and values must have matching length"
            )
        # Validate the whole column up front so a bad value in a late
        # chunk cannot leave the sketch partially updated.
        _validate_values(values)
        if hashes is None:
            hashes = key_hashes(keys)
        for start in range(0, len(keys), chunk_size):
            stop = start + chunk_size
            chunk_keys, chunk_values, seeds = self._prepare_batch(
                keys[start:stop], values[start:stop], hashes[start:stop]
            )
            ranks = np.asarray(
                self.rank_family.rank(chunk_values, seeds), dtype=float
            )
            if not self._try_bulk(
                chunk_keys, chunk_values, seeds, ranks, hashes[start:stop]
            ):
                self._ingest_rows(chunk_keys, chunk_values, seeds, ranks)

    def update_batch(
        self,
        keys: Sequence[object],
        values,
        hashes: np.ndarray | None = None,
    ) -> None:
        """Ingest one batch as a single chunk (compatibility alias for
        :meth:`update_many`)."""
        keys = list(keys)
        self.update_many(
            keys, values, chunk_size=max(len(keys), 1), hashes=hashes
        )

    def _bulk_clean(self, hashes: np.ndarray) -> bool:
        """Whether a chunk can skip the per-row loop: keys certainly
        distinct (distinct hashes) and certainly absent from the retained
        set (no retained-hash overlap; collisions just fall back)."""
        if np.unique(hashes).size != len(hashes):
            return False
        if self._values:
            # the retained hashes are kept sorted, so membership is a
            # binary search — np.isin would re-sort the whole retained
            # set on every chunk, which dominates large-sketch ingest
            retained = self._retained_hashes()
            slots = np.minimum(
                np.searchsorted(retained, hashes), retained.size - 1
            )
            if (retained[slots] == hashes).any():
                return False
        return True

    def _retained_hashes(self) -> np.ndarray:
        """Sorted hashes of the retained keys (recomputed per chunk;
        subclasses with an unbounded retained set cache them
        incrementally)."""
        return np.sort(key_hashes(list(self._values)))

    def _try_bulk(self, keys, values, seeds, ranks, hashes) -> bool:
        """Fold one clean chunk into the sketch with array operations;
        return False to fall back to the per-row loop."""
        return False

    def _ingest_rows(self, keys, values, seeds, ranks) -> None:
        """Per-row reference loop over one prepared chunk."""
        raise NotImplementedError

    def _ingest(self, key: object, value: float, seed: float) -> None:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # State export
    # ------------------------------------------------------------------
    def _config_state(self) -> dict:
        """Configuration and counters shared by both sketch families."""
        return {
            "instance": self.instance,
            "rank_family": self.rank_family,
            "salt": self.seed_assigner.salt,
            "coordinated": self.seed_assigner.coordinated,
            "n_updates": self.n_updates,
            "n_discarded_keys": self.n_discarded_keys,
        }

    def state_dict(self) -> dict:
        """Full snapshot of the sketch state (see subclasses)."""
        raise NotImplementedError

    def _eq_state(self) -> tuple:
        """Order-insensitive view of the state used by ``__eq__``."""
        raise NotImplementedError

    def __eq__(self, other: object) -> bool:
        """Whether two sketches carry identical snapshot state.

        Equality compares configuration, counters and the retained
        entries — values, ranks and (for bottom-k) seeds — but *not* the
        internal entry ordering, so sketches built from permutations of
        the same updates compare equal.  :meth:`state_dict` exposes the
        ordering too, for consumers (the binary codec) that need
        bit-identical continuation behaviour.
        """
        if type(other) is not type(self):
            return NotImplemented
        return self._eq_state() == other._eq_state()

    # sketches are mutable containers; equality is by state, so identity
    # hashing would break the hash invariant
    __hash__ = None


class StreamingBottomK(_StreamingSketch):
    """Streaming bottom-k sketch of one instance.

    Parameters
    ----------
    k:
        Nominal sample size; the sketch retains at most ``k + 1`` keys (the
        sample plus the threshold candidate).
    instance:
        Label of the summarised instance; part of the seed derivation.
    rank_family:
        Rank family (default :class:`ExpRanks`, i.e. weighted sampling
        without replacement).
    seed_assigner:
        Source of reproducible per-(key, instance) seeds; pass one built
        with ``coordinated=True`` to coordinate sketches across instances.

    Examples
    --------
    >>> from repro.sampling.seeds import SeedAssigner
    >>> sketch = StreamingBottomK(k=2, seed_assigner=SeedAssigner(salt=1))
    >>> sketch.extend([("a", 1.0), ("b", 2.0), ("c", 3.0)])
    >>> len(sketch.to_sample()) == 2
    True
    """

    def __init__(
        self,
        k: int,
        instance: object = 0,
        rank_family: RankFamily | None = None,
        seed_assigner: SeedAssigner | None = None,
    ) -> None:
        if k <= 0:
            raise InvalidParameterError(f"k must be positive, got {k}")
        super().__init__(instance, rank_family, seed_assigner)
        self.k = int(k)
        # accumulated value, current rank and seed of the retained keys;
        # at most k + 1 entries at any time
        self._values: dict[object, float] = {}
        self._ranks: dict[object, float] = {}
        self._seeds: dict[object, float] = {}
        # lazy max-heap over (-rank, seq, key); seq breaks rank ties so
        # keys are never compared; entries whose rank no longer matches
        # ``_ranks`` are stale and skipped on pop
        self._heap: list[tuple[float, int, object]] = []
        self._seq = 0
        # cached largest retained rank when the sketch is full, for the O(1)
        # reject fast path; None when fewer than k + 1 keys are retained
        self._full_max: float | None = None

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def _ingest(self, key: object, value: float, seed: float) -> None:
        if key in self._values:
            self._accumulate(key, value, seed)
        else:
            self._insert_new(key, value, seed, self._rank(value, seed))

    def _accumulate(self, key: object, value: float, seed: float) -> None:
        # ranks are nonincreasing in the value, so a retained key stays
        # retained; refresh its rank from the accumulated total
        total = self._values[key] + value
        rank = self._rank(total, seed)
        self._values[key] = total
        self._ranks[key] = rank
        self._push(rank, key)
        if self._full_max is not None:
            self._full_max = -self._clean_top()[0]

    def _insert_new(
        self, key: object, value: float, seed: float, rank: float
    ) -> None:
        if not np.isfinite(rank):
            return
        if self._full_max is not None and rank >= self._full_max:
            self.n_discarded_keys += 1
            return
        self._values[key] = value
        self._ranks[key] = rank
        self._seeds[key] = seed
        self._push(rank, key)
        if len(self._values) > self.k + 1:
            self._evict()
        elif len(self._values) == self.k + 1:
            self._full_max = -self._clean_top()[0]

    def _ingest_rows(self, keys, values, seeds, ranks) -> None:
        for i in np.nonzero(values > 0.0)[0]:
            key = keys[i]
            if key in self._values:
                self._accumulate(key, float(values[i]), float(seeds[i]))
            else:
                self._insert_new(
                    key, float(values[i]), float(seeds[i]), float(ranks[i])
                )

    def _try_bulk(self, keys, values, seeds, ranks, hashes) -> bool:
        """Fold a clean chunk with one ``argpartition`` instead of per-row
        heap updates.

        With distinct, not-yet-retained keys and no rank ties at the
        cutoff, the final retained set is exactly the ``k + 1`` smallest
        ranks of (retained ∪ chunk), and every other key dies exactly once
        — either rejected on arrival or evicted later — so the discard
        counter advances by ``|retained| + |chunk| - |final|`` no matter
        the arrival order.  The heap is rebuilt once per chunk ("heap only
        across chunk boundaries").
        """
        keep_rows = values > 0.0
        # Rows with non-finite rank are dropped silently, as in the
        # per-row loop (``_insert_new`` neither retains nor counts them).
        keep_rows &= np.isfinite(ranks)
        if not keep_rows.all():
            rows = np.nonzero(keep_rows)[0]
            keys = [keys[i] for i in rows]
            values, seeds = values[rows], seeds[rows]
            ranks, hashes = ranks[rows], hashes[rows]
        if not keys:
            return True
        if not self._bulk_clean(hashes):
            return False
        old_keys = list(self._values)
        n_old, n_new = len(old_keys), len(keys)
        total = n_old + n_new
        keep = min(self.k + 1, total)
        combined = np.concatenate(
            [
                np.fromiter(
                    (self._ranks[key] for key in old_keys),
                    dtype=float,
                    count=n_old,
                ),
                ranks,
            ]
        )
        if total > keep:
            order = np.argpartition(combined, keep - 1)
            selected = order[:keep]
            if combined[selected].max() == combined[order[keep:]].min():
                # A rank tie at the cutoff is resolved by arrival order in
                # the scalar path; replay it exactly instead.
                return False
        else:
            selected = np.arange(total)
        new_values: dict[object, float] = {}
        new_ranks: dict[object, float] = {}
        new_seeds: dict[object, float] = {}
        heap: list[tuple[float, int, object]] = []
        for index in selected.tolist():
            if index < n_old:
                key = old_keys[index]
                value = self._values[key]
                rank = self._ranks[key]
                seed = self._seeds[key]
            else:
                row = index - n_old
                key = keys[row]
                value = float(values[row])
                rank = float(ranks[row])
                seed = float(seeds[row])
            new_values[key] = value
            new_ranks[key] = rank
            new_seeds[key] = seed
            self._seq += 1
            heap.append((-rank, self._seq, key))
        heapq.heapify(heap)
        self._values, self._ranks, self._seeds = (
            new_values, new_ranks, new_seeds,
        )
        self._heap = heap
        self.n_discarded_keys += total - len(selected)
        if len(new_ranks) == self.k + 1:
            self._full_max = max(new_ranks.values())
        else:
            self._full_max = None
        return True

    def _push(self, rank: float, key: object) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (-rank, self._seq, key))

    def _clean_top(self) -> tuple[float, int, object]:
        """Pop stale heap entries and return the valid max-rank entry."""
        while True:
            neg_rank, _, key = self._heap[0]
            if self._ranks.get(key) == -neg_rank:
                return self._heap[0]
            heapq.heappop(self._heap)

    def _evict(self) -> None:
        _, _, key = self._clean_top()
        heapq.heappop(self._heap)
        del self._values[key], self._ranks[key], self._seeds[key]
        self.n_discarded_keys += 1
        self._full_max = -self._clean_top()[0]

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return min(len(self._values), self.k)

    def __contains__(self, key: object) -> bool:
        return key in self._values and self._ranks[key] < self.threshold

    @property
    def threshold(self) -> float:
        """The ``(k + 1)``-st smallest rank seen so far (``inf`` if fewer)."""
        if len(self._values) <= self.k:
            return float("inf")
        return max(self._ranks.values())

    def candidates(self) -> dict[object, float]:
        """Accumulated values of all retained keys (sample + candidate)."""
        return dict(self._values)

    def candidate_ranks(self) -> dict[object, float]:
        """Current ranks of all retained keys."""
        return dict(self._ranks)

    def to_sample(self) -> BottomKSample:
        """Snapshot the sketch as an offline :class:`BottomKSample`.

        The result is identical — entries, ranks, threshold — to running
        :func:`repro.sampling.bottomk.bottom_k_sample` on the accumulated
        data with the same seed assignment, so every downstream estimator
        (rank conditioning, priority totals) applies unchanged.
        """
        order = sorted(self._ranks, key=self._ranks.get)[: self.k]
        return BottomKSample(
            instance=self.instance,
            entries={key: self._values[key] for key in order},
            ranks={key: self._ranks[key] for key in order},
            threshold=self.threshold,
            k=self.k,
            rank_family=self.rank_family,
            seed_assigner=self.seed_assigner,
        )

    def _entry_order(self) -> list:
        """Retained keys ordered by their effective heap position.

        The heap breaks exact rank ties by insertion sequence number, so
        the *relative* sequence order of the retained keys is part of the
        sketch's forward behaviour.  A key's effective position is the
        smallest sequence number among its non-stale heap entries; stale
        entries (rank no longer current) never influence behaviour and are
        dropped from the export.
        """
        best: dict[object, int] = {}
        for neg_rank, seq, key in self._heap:
            if self._ranks.get(key) == -neg_rank:
                current = best.get(key)
                if current is None or seq < current:
                    best[key] = seq
        ordered = sorted(best, key=best.get)
        if len(ordered) != len(self._values):  # pragma: no cover - defensive
            ordered += [key for key in self._values if key not in best]
        return ordered

    def state_dict(self) -> dict:
        """Complete snapshot of the sketch state.

        ``entries`` lists the retained keys in dict-insertion order as
        ``(key, value, rank, seed, heap_position)`` tuples, where
        ``heap_position`` is the key's index in :meth:`_entry_order`.
        Restoring from this state (:meth:`from_state`) yields a sketch
        whose subsequent updates are bit-identical to the live one.
        """
        position = {
            key: index for index, key in enumerate(self._entry_order())
        }
        state = self._config_state()
        state["kind"] = "bottom_k"
        state["k"] = self.k
        state["entries"] = tuple(
            (
                key,
                self._values[key],
                self._ranks[key],
                self._seeds[key],
                position[key],
            )
            for key in self._values
        )
        return state

    def _eq_state(self) -> tuple:
        return (
            self.k,
            self.instance,
            self.rank_family,
            self.seed_assigner,
            self.n_updates,
            self.n_discarded_keys,
            frozenset(
                (key, self._values[key], self._ranks[key], self._seeds[key])
                for key in self._values
            ),
        )

    @classmethod
    def from_state(cls, state: Mapping) -> "StreamingBottomK":
        """Rebuild a sketch from a :meth:`state_dict` snapshot.

        The restored sketch is state-identical to the exported one: same
        :meth:`to_sample` snapshot and bit-identical behaviour on any
        subsequent stream of updates.
        """
        family = state["rank_family"]
        if isinstance(family, str):
            family = rank_family_from_name(family)
        sketch = cls(
            k=int(state["k"]),
            instance=state["instance"],
            rank_family=family,
            seed_assigner=SeedAssigner(
                salt=state["salt"], coordinated=bool(state["coordinated"])
            ),
        )
        entries = tuple(state["entries"])
        if len(entries) > sketch.k + 1:
            raise InvalidParameterError(
                f"bottom-k state holds {len(entries)} entries; at most "
                f"k + 1 = {sketch.k + 1} can be retained"
            )
        sketch.n_updates = int(state["n_updates"])
        sketch.n_discarded_keys = int(state["n_discarded_keys"])
        by_position = sorted(entries, key=lambda entry: entry[4])
        seq_of = {
            entry[0]: seq for seq, entry in enumerate(by_position, start=1)
        }
        heap: list[tuple[float, int, object]] = []
        for key, value, rank, seed, _position in entries:
            if key in sketch._values:
                raise InvalidParameterError(
                    f"bottom-k state repeats key {key!r}"
                )
            sketch._values[key] = float(value)
            sketch._ranks[key] = float(rank)
            sketch._seeds[key] = float(seed)
            heap.append((-float(rank), seq_of[key], key))
        heapq.heapify(heap)
        sketch._heap = heap
        sketch._seq = len(entries)
        if len(sketch._values) == sketch.k + 1:
            sketch._full_max = max(sketch._ranks.values())
        return sketch


class StreamingPoisson(_StreamingSketch):
    """Streaming Poisson-``tau`` sketch of one instance.

    Retains exactly the keys whose rank is below ``threshold``.  With
    :class:`PpsRanks` this is streaming PPS sampling (``tau = 1 /
    tau_star``), with :class:`UniformRanks` it is weight-oblivious Poisson
    sampling with probability ``tau`` — the two schemes the multi-instance
    estimators of :mod:`repro.core` are built for.
    """

    def __init__(
        self,
        threshold: float,
        instance: object = 0,
        rank_family: RankFamily | None = None,
        seed_assigner: SeedAssigner | None = None,
    ) -> None:
        threshold = float(threshold)
        if not threshold > 0.0:
            raise InvalidParameterError(
                f"threshold must be positive, got {threshold}"
            )
        if rank_family is None:
            rank_family = UniformRanks()
        if isinstance(rank_family, UniformRanks) and threshold > 1.0:
            raise InvalidParameterError(
                "a weight-oblivious threshold is a probability and must be "
                f"at most 1, got {threshold}"
            )
        super().__init__(instance, rank_family, seed_assigner)
        self.threshold = threshold
        # offline oblivious sampling is inclusive (``seed <= p``), weighted
        # sampling strict (``rank < tau``); mirror both exactly
        self._inclusive = isinstance(self.rank_family, UniformRanks)
        self._values: dict[object, float] = {}
        self._ranks: dict[object, float] = {}
        # Incremental retained-hash cache for the bulk path: the retained
        # set is unbounded (unlike bottom-k's k + 1), so rehashing it per
        # chunk would be quadratic over a long stream.  Valid only while
        # its key count matches ``_values``; any scalar/fallback insert
        # desynchronises the count and forces a rebuild.
        self._hash_cache = np.empty(0, dtype=np.uint64)
        self._hash_cache_count = 0

    def _keeps(self, rank: float) -> bool:
        if self._inclusive:
            return rank <= self.threshold
        return rank < self.threshold

    def _ingest(self, key: object, value: float, seed: float) -> None:
        old = self._values.get(key)
        if old is not None:
            total = old + value
            self._values[key] = total
            self._ranks[key] = self._rank(total, seed)
            return
        rank = self._rank(value, seed)
        if not self._keeps(rank):
            self.n_discarded_keys += 1
            return
        self._values[key] = value
        self._ranks[key] = rank

    def _ingest_rows(self, keys, values, seeds, ranks) -> None:
        if self._inclusive:
            keep = ranks <= self.threshold
        else:
            keep = ranks < self.threshold
        for i in np.nonzero(values > 0.0)[0]:
            key = keys[i]
            if key in self._values:
                total = self._values[key] + float(values[i])
                self._values[key] = total
                self._ranks[key] = self._rank(total, float(seeds[i]))
            elif keep[i]:
                self._values[key] = float(values[i])
                self._ranks[key] = float(ranks[i])
            else:
                self.n_discarded_keys += 1

    def _try_bulk(self, keys, values, seeds, ranks, hashes) -> bool:
        """Fold a clean chunk with one threshold mask: retention is
        per-key independent, so distinct new keys insert in bulk and the
        rest advance the discard counter in one step."""
        positive = values > 0.0
        if not positive.all():
            rows = np.nonzero(positive)[0]
            keys = [keys[i] for i in rows]
            values, ranks = values[rows], ranks[rows]
            hashes = hashes[rows]
        if not keys:
            return True
        if not self._bulk_clean(hashes):
            return False
        if self._inclusive:
            keep = ranks <= self.threshold
        else:
            keep = ranks < self.threshold
        rows = np.nonzero(keep)[0]
        # _bulk_clean just synchronised (or trivially matched) the hash
        # cache, so the inserted hashes merge into the sorted cache in
        # one O(retained + inserted) pass instead of a full re-sort.
        retained = self._retained_hashes()
        self._values.update(
            (keys[i], float(values[i])) for i in rows.tolist()
        )
        self._ranks.update(
            (keys[i], float(ranks[i])) for i in rows.tolist()
        )
        inserted = np.sort(hashes[rows])
        self._hash_cache = np.insert(
            retained, np.searchsorted(retained, inserted), inserted
        )
        self._hash_cache_count = len(self._values)
        self.n_discarded_keys += int(len(keys) - rows.size)
        return True

    def _retained_hashes(self) -> np.ndarray:
        if self._hash_cache_count != len(self._values):
            self._hash_cache = np.sort(key_hashes(list(self._values)))
            self._hash_cache_count = len(self._values)
        return self._hash_cache

    def __len__(self) -> int:
        return len(self._values)

    def __contains__(self, key: object) -> bool:
        return key in self._values

    @property
    def entries(self) -> dict[object, float]:
        """Accumulated values of the retained keys."""
        return dict(self._values)

    def candidate_ranks(self) -> dict[object, float]:
        """Current ranks of the retained keys."""
        return dict(self._ranks)

    def to_sample(self) -> PoissonSample:
        """Snapshot the sketch as an offline :class:`PoissonSample`.

        Matches :func:`repro.sampling.poisson.poisson_uniform_sample` /
        :func:`poisson_weighted_sample` of the accumulated data, so the HT
        subset-sum estimator and the known-seed machinery apply unchanged.
        """
        entries = dict(self._values)
        if isinstance(self.rank_family, UniformRanks):
            return PoissonSample(
                instance=self.instance,
                entries=entries,
                inclusion_probabilities={
                    key: self.threshold for key in entries
                },
                probability=self.threshold,
                seed_assigner=self.seed_assigner,
                rank_family_name=self.rank_family.name,
            )
        probabilities = {
            key: float(self.rank_family.cdf(value, self.threshold))
            for key, value in entries.items()
        }
        return PoissonSample(
            instance=self.instance,
            entries=entries,
            inclusion_probabilities=probabilities,
            threshold=self.threshold,
            seed_assigner=self.seed_assigner,
            rank_family_name=self.rank_family.name,
        )

    def state_dict(self) -> dict:
        """Complete snapshot of the sketch state.

        ``entries`` lists the retained keys in dict-insertion order as
        ``(key, value, rank)`` tuples; the order is preserved by
        :meth:`from_state` so query paths that iterate the entries (and
        therefore sum floats in that order) reproduce bit-identical
        results.
        """
        state = self._config_state()
        state["kind"] = "poisson"
        state["threshold"] = self.threshold
        state["entries"] = tuple(
            (key, self._values[key], self._ranks[key])
            for key in self._values
        )
        return state

    def _eq_state(self) -> tuple:
        return (
            self.threshold,
            self.instance,
            self.rank_family,
            self.seed_assigner,
            self.n_updates,
            self.n_discarded_keys,
            frozenset(
                (key, self._values[key], self._ranks[key])
                for key in self._values
            ),
        )

    @classmethod
    def from_state(cls, state: Mapping) -> "StreamingPoisson":
        """Rebuild a sketch from a :meth:`state_dict` snapshot."""
        family = state["rank_family"]
        if isinstance(family, str):
            family = rank_family_from_name(family)
        sketch = cls(
            threshold=float(state["threshold"]),
            instance=state["instance"],
            rank_family=family,
            seed_assigner=SeedAssigner(
                salt=state["salt"], coordinated=bool(state["coordinated"])
            ),
        )
        sketch.n_updates = int(state["n_updates"])
        sketch.n_discarded_keys = int(state["n_discarded_keys"])
        for key, value, rank in state["entries"]:
            if key in sketch._values:
                raise InvalidParameterError(
                    f"Poisson state repeats key {key!r}"
                )
            sketch._values[key] = float(value)
            sketch._ranks[key] = float(rank)
        return sketch


def sketch_from_state(state: Mapping):
    """Rebuild either sketch family from a ``state_dict()`` snapshot."""
    kind = state.get("kind")
    if kind == "bottom_k":
        return StreamingBottomK.from_state(state)
    if kind == "poisson":
        return StreamingPoisson.from_state(state)
    raise InvalidParameterError(
        f"unknown sketch state kind {kind!r}; expected 'bottom_k' or "
        "'poisson'"
    )
