"""Querying families of coordinated sketches with the offline estimators.

The estimators of :mod:`repro.core` consume per-key
:class:`~repro.sampling.outcomes.VectorOutcome` objects; the aggregate
functions of :mod:`repro.aggregates` consume samples plus seed lookups.
This module adapts a family of per-instance streaming sketches into exactly
those shapes, so the paper's estimators — ``max^(L)``, the OR family,
rank-conditioning subset sums, distinct count, max dominance, L1 distance —
run on streaming output with zero estimator changes.

All adapters only see what a sketch legitimately knows: the values of
retained keys and, through the shared :class:`SeedAssigner`, the seed of
*any* key — the known-seeds model of the paper.

The multi-instance estimators assume instances were sampled
*independently*; sketches built from a ``coordinated=True`` seed assigner
(shared seeds across instances) are rejected here, because the same
formulas silently return biased numbers under coordination.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.aggregates.dataset import KeyPredicate, MultiInstanceDataset
from repro.aggregates.distinct import (
    DistinctCountEstimate,
    distinct_count_ht,
    distinct_count_l,
)
from repro.batch.outcome_batch import OutcomeBatch
from repro.core.estimator_base import VectorEstimator
from repro.core.max_weighted import MaxPpsHT, MaxPpsL
from repro.exceptions import InvalidParameterError
from repro.sampling.outcomes import VectorOutcome
from repro.sampling.ranks import PpsRanks, UniformRanks
from repro.streaming.sketch import StreamingBottomK, StreamingPoisson

__all__ = [
    "StreamingDominanceEstimate",
    "dataset_view",
    "distinct_count",
    "l1_distance",
    "max_dominance",
    "outcome_batch",
    "rank_conditioning_total",
    "sum_aggregate",
    "vector_outcomes",
]


def _check_family(sketches: Sequence[StreamingPoisson]) -> None:
    if not sketches:
        raise InvalidParameterError("at least one sketch is required")
    labels = [sketch.instance for sketch in sketches]
    if len(set(map(repr, labels))) != len(labels):
        raise InvalidParameterError(
            "sketches must summarise distinct instances"
        )


def _check_independent(sketches: Sequence[StreamingPoisson], name: str) -> None:
    """Reject coordinated (shared-seed) sketches for estimators that assume
    instances were sampled independently.

    The Section 8 estimators are derived for independent samples; with a
    ``coordinated=True`` seed assigner the per-key inclusion events of
    different instances are fully correlated and the same formulas return
    biased numbers without any other symptom.
    """
    for sketch in sketches:
        if sketch.seed_assigner.coordinated:
            raise InvalidParameterError(
                f"{name} assumes independently sampled instances; sketches "
                "built from a coordinated (shared-seed) SeedAssigner are "
                "not supported by this estimator"
            )


def _check_uniform(sketch: StreamingPoisson, name: str) -> float:
    if not isinstance(sketch.rank_family, UniformRanks):
        raise InvalidParameterError(
            f"{name} requires weight-oblivious (UniformRanks) sketches; "
            f"got {sketch.rank_family.name} ranks"
        )
    return sketch.threshold


def _seed_map(
    sketch: StreamingPoisson, keys: Sequence[object]
) -> dict[object, float]:
    """Seeds of ``keys`` in the sketch's instance, one vectorised pass."""
    return sketch.seed_assigner.seed_map(list(keys), instance=sketch.instance)


def outcome_batch(
    sketches: Sequence[StreamingPoisson],
    predicate: KeyPredicate | None = None,
    include_seeds: bool = True,
) -> tuple[list[object], OutcomeBatch]:
    """Columnar per-key sampling outcomes of a family of Poisson sketches.

    Entry ``i`` of the outcome of key ``h`` is sampled iff ``h`` is retained
    by ``sketches[i]`` — or, for a weight-oblivious sketch, iff the (known)
    seed of ``h`` is at most the threshold: oblivious sampling observes keys
    regardless of their value, so a key that is seed-selected but not
    retained was *observed to be zero* in that instance, exactly as in the
    offline pipeline.  With ``include_seeds`` the batch carries the seed
    of every entry (known-seeds model), which the PPS and known-seed OR
    estimators require.

    Returns the key list (one batch row per key, in sketch-retention
    order) and the assembled :class:`~repro.batch.OutcomeBatch`.
    """
    _check_family(sketches)
    entry_maps = [sketch.entries for sketch in sketches]
    keys: dict[object, None] = {}
    for entries in entry_maps:
        for key in entries:
            if predicate is None or predicate(key):
                keys.setdefault(key)
    key_list = list(keys)
    n = len(key_list)
    r = len(sketches)
    values = np.zeros((n, r), dtype=np.float64)
    sampled = np.zeros((n, r), dtype=bool)
    seeds = np.zeros((n, r), dtype=np.float64) if include_seeds else None
    for index, sketch in enumerate(sketches):
        entries = entry_maps[index]
        # Membership mask, not a value sentinel: a retained entry whose
        # accumulated value is NaN must stay sampled (and propagate NaN
        # loudly) rather than be reclassified as unretained.
        retained = np.fromiter(
            (key in entries for key in key_list), dtype=bool, count=n
        )
        values[:, index] = np.fromiter(
            (entries.get(key, 0.0) for key in key_list),
            dtype=np.float64,
            count=n,
        )
        oblivious = isinstance(sketch.rank_family, UniformRanks)
        if include_seeds or oblivious:
            # one vectorised seed pass per sketch instead of a hash per
            # (key, sketch) pair
            seed_column = sketch.seed_assigner.seeds(
                key_list, instance=sketch.instance
            )
            if seeds is not None:
                seeds[:, index] = seed_column
        if oblivious:
            # a seed-selected but unretained key was observed to be zero
            sampled[:, index] = retained | (seed_column <= sketch.threshold)
        else:
            sampled[:, index] = retained
    return key_list, OutcomeBatch(values=values, sampled=sampled, seeds=seeds)


def vector_outcomes(
    sketches: Sequence[StreamingPoisson],
    predicate: KeyPredicate | None = None,
    include_seeds: bool = True,
) -> dict[object, VectorOutcome]:
    """Per-key sampling outcomes of a family of Poisson sketches.

    The scalar row view of :func:`outcome_batch`, kept for callers that
    consume one :class:`VectorOutcome` at a time.
    """
    keys, batch = outcome_batch(
        sketches, predicate=predicate, include_seeds=include_seeds
    )
    return {key: batch.row(index) for index, key in enumerate(keys)}


def sum_aggregate(
    sketches: Sequence[StreamingPoisson],
    estimator: VectorEstimator,
    predicate: KeyPredicate | None = None,
    include_seeds: bool = True,
) -> float:
    """Estimate ``sum_h f(v(h))`` from sketches with a per-key estimator.

    Keys retained by no sketch contribute zero per-key estimates (every
    estimator of the paper is zero on the empty outcome), so summing over
    retained keys only is exact for the estimator.  The per-key outcomes
    are assembled into one columnar batch and estimated in a single
    vectorized ``estimate_batch`` pass.
    """
    if estimator.r != len(sketches):
        raise InvalidParameterError(
            f"estimator expects r={estimator.r} instances, "
            f"got {len(sketches)} sketches"
        )
    _check_independent(sketches, "sum_aggregate")
    _, batch = outcome_batch(
        sketches, predicate=predicate, include_seeds=include_seeds
    )
    return float(estimator.estimate_batch(batch).sum())


def dataset_view(
    sketches: Sequence[StreamingPoisson | StreamingBottomK],
) -> MultiInstanceDataset:
    """The retained entries as a :class:`MultiInstanceDataset`.

    This is the *sketch view* of the data — the exact aggregates of the view
    are aggregates of the samples, not unbiased estimates — useful for
    feeding sketch output to any code written against the offline dataset
    protocol.
    """
    _check_family(sketches)
    return MultiInstanceDataset(
        {
            sketch.instance: (
                sketch.entries
                if isinstance(sketch, StreamingPoisson)
                else sketch.to_sample().entries
            )
            for sketch in sketches
        }
    )


def rank_conditioning_total(
    sketch: StreamingBottomK, predicate: KeyPredicate | None = None
) -> float:
    """Rank-conditioning subset-sum estimate from a bottom-k sketch."""
    if not isinstance(sketch, StreamingBottomK):
        raise InvalidParameterError(
            "rank conditioning requires a bottom-k sketch"
        )
    return sketch.to_sample().rank_conditioning_total(predicate)


def distinct_count(
    sketch1: StreamingPoisson,
    sketch2: StreamingPoisson,
    variant: str = "l",
    predicate: KeyPredicate | None = None,
) -> DistinctCountEstimate:
    """Distinct count of two instances from weight-oblivious sketches.

    Dispatches to the offline Section 8.1 estimators with the sketch
    thresholds as inclusion probabilities and the shared seed assigner as
    the seed oracle.
    """
    _check_independent((sketch1, sketch2), "distinct_count")
    p1 = _check_uniform(sketch1, "distinct_count")
    p2 = _check_uniform(sketch2, "distinct_count")
    estimators = {"l": distinct_count_l, "ht": distinct_count_ht}
    try:
        estimate = estimators[variant.lower()]
    except KeyError:
        raise InvalidParameterError(
            f"unknown distinct-count variant {variant!r}; use 'l' or 'ht'"
        ) from None
    entries1, entries2 = sketch1.entries, sketch2.entries
    union = list({**entries1, **entries2})
    return estimate(
        entries1,
        entries2,
        p1,
        p2,
        _seed_map(sketch1, union),
        _seed_map(sketch2, union),
        predicate=predicate,
    )


def l1_distance(
    sketch1: StreamingPoisson,
    sketch2: StreamingPoisson,
    predicate: KeyPredicate | None = None,
) -> float:
    """HT estimate of the L1 distance from weight-oblivious sketches.

    A key contributes ``|v_1 - v_2| / (p_1 p_2)`` when sampled in both
    instances — the streaming counterpart of
    :func:`repro.aggregates.distance.l1_distance_ht`.  A key that is
    seed-selected but not retained by a sketch was observed to be zero
    there, so keys of one instance seed-selected by the other contribute
    their full value.
    """
    _check_independent((sketch1, sketch2), "l1_distance")
    p1 = _check_uniform(sketch1, "l1_distance")
    p2 = _check_uniform(sketch2, "l1_distance")
    entries1, entries2 = sketch1.entries, sketch2.entries
    union = list({**entries1, **entries2})
    seeds1, seeds2 = _seed_map(sketch1, union), _seed_map(sketch2, union)
    total = 0.0
    for key in union:
        if predicate is not None and not predicate(key):
            continue
        v1, v2 = entries1.get(key), entries2.get(key)
        sampled1 = v1 is not None or seeds1[key] <= p1
        sampled2 = v2 is not None or seeds2[key] <= p2
        if sampled1 and sampled2:
            total += abs((v1 or 0.0) - (v2 or 0.0)) / (p1 * p2)
    return total


@dataclass(frozen=True)
class StreamingDominanceEstimate:
    """Max-dominance estimates computed from a pair of PPS sketches."""

    ht: float
    l: float
    n_sampled_keys: int


def max_dominance(
    sketch1: StreamingPoisson,
    sketch2: StreamingPoisson,
    predicate: KeyPredicate | None = None,
) -> StreamingDominanceEstimate:
    """Max-dominance norm of two instances from PPS sketches (Section 8.2).

    A PPS sketch with threshold ``tau`` samples key ``h`` iff
    ``u(h) / v(h) < tau``, i.e. it is Poisson PPS sampling with
    ``tau_star = 1 / tau`` — the scheme the ``max^(HT)`` / ``max^(L)``
    known-seed estimators are derived for.
    """
    _check_independent((sketch1, sketch2), "max_dominance")
    for sketch in (sketch1, sketch2):
        if not isinstance(sketch.rank_family, PpsRanks):
            raise InvalidParameterError(
                "max_dominance requires PPS (PpsRanks) sketches; "
                f"got {sketch.rank_family.name} ranks"
            )
    tau_star = (1.0 / sketch1.threshold, 1.0 / sketch2.threshold)
    estimator_ht = MaxPpsHT(tau_star)
    estimator_l = MaxPpsL(tau_star)
    keys, batch = outcome_batch((sketch1, sketch2), predicate=predicate)
    return StreamingDominanceEstimate(
        ht=float(estimator_ht.estimate_batch(batch).sum()),
        l=float(estimator_l.estimate_batch(batch).sum()),
        n_sampled_keys=len(keys),
    )
