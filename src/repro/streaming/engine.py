"""Sharded streaming ingestion of ``(instance, key, value)`` updates.

:class:`StreamEngine` is the entry point of the streaming path.  It accepts
batched NumPy columns of updates, routes each key to a shard by key hash
(the same hash pass that derives the key's seeds), and drives one sketch
per (instance, shard) pair with vectorised batch updates.  Because shards
partition the key space, per-shard sketches merge exactly
(:mod:`repro.streaming.merge`) into the sketch of the whole stream — the
shard-and-reduce shape that later distribution work builds on.

An optional executor (any object with a :meth:`map` method, e.g.
``concurrent.futures.ThreadPoolExecutor``) runs the per-shard updates of a
batch concurrently; by default they run inline.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Mapping, Sequence
from typing import NamedTuple

import numpy as np

from repro.exceptions import InvalidParameterError
from repro.sampling.ranks import (
    ExpRanks,
    RankFamily,
    UniformRanks,
    rank_family_from_name,
)
from repro.sampling.seeds import SeedAssigner, key_hashes
from repro.streaming.merge import merge_sketches
from repro.streaming.sketch import (
    StreamingBottomK,
    StreamingPoisson,
    sketch_from_state,
)

__all__ = ["IngestJob", "StreamEngine"]


class IngestJob(NamedTuple):
    """One shard's share of an ingest batch (see
    :meth:`StreamEngine.ingest_jobs`)."""

    shard: int
    sketch: object
    keys: Sequence[object]
    values: np.ndarray
    hashes: np.ndarray


class StreamEngine:
    """Shard-parallel ingestion engine over per-instance sketches.

    Parameters
    ----------
    sketch_factory:
        Callable ``instance -> sketch`` building an empty sketch of the
        instance; it is called once per (instance, shard).  All sketches of
        one instance must be configured identically — use the convenience
        constructors :meth:`bottom_k` and :meth:`poisson` for the common
        cases.
    n_shards:
        Number of key-hash shards per instance.
    executor:
        Optional executor with a ``map(fn, iterable)`` method used to run
        the per-shard work of a batch concurrently.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.sampling.seeds import SeedAssigner
    >>> engine = StreamEngine.bottom_k(
    ...     k=4, seed_assigner=SeedAssigner(salt=3, coordinated=True))
    >>> engine.ingest("day1", np.arange(100), np.ones(100))
    >>> len(engine.sample("day1"))
    4
    """

    def __init__(
        self,
        sketch_factory: Callable[[object], object],
        n_shards: int = 8,
        executor=None,
    ) -> None:
        if n_shards <= 0:
            raise InvalidParameterError(
                f"n_shards must be positive, got {n_shards}"
            )
        self._factory = sketch_factory
        self.n_shards = int(n_shards)
        self.executor = executor
        self._shards: dict[object, list] = {}
        self.n_updates = 0
        #: per-shard update counters (summed over instances) — the
        #: load-balance signal behind the per-engine metrics block.
        #: Session-local like :attr:`change_tick`: never serialized, a
        #: restored engine starts at zero.
        self.shard_updates: list[int] = [0] * self.n_shards
        #: session-local monotone mutation counter — bumped by every
        #: :meth:`ingest_jobs` plan and every :meth:`merge_from`, never
        #: serialized, so a freshly restored engine always reads 0
        #: ("clean").  The serving layer polls it as a cheap dirty probe.
        self.change_tick = 0
        #: configuration recorded by the :meth:`bottom_k` / :meth:`poisson`
        #: constructors; ``None`` for custom factories, which therefore
        #: cannot be serialized or merged engine-to-engine
        self.sketch_config: dict | None = None

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def bottom_k(
        cls,
        k: int,
        rank_family: RankFamily | None = None,
        seed_assigner: SeedAssigner | None = None,
        n_shards: int = 8,
        executor=None,
    ) -> "StreamEngine":
        """Engine maintaining a :class:`StreamingBottomK` per instance."""
        if seed_assigner is None:
            seed_assigner = SeedAssigner()
        if rank_family is None:
            rank_family = ExpRanks()

        def factory(instance: object) -> StreamingBottomK:
            return StreamingBottomK(
                k=k,
                instance=instance,
                rank_family=rank_family,
                seed_assigner=seed_assigner,
            )

        engine = cls(factory, n_shards=n_shards, executor=executor)
        engine.sketch_config = {
            "kind": "bottom_k",
            "k": int(k),
            "rank_family": rank_family,
            "seed_assigner": seed_assigner,
        }
        return engine

    @classmethod
    def poisson(
        cls,
        threshold: float,
        rank_family: RankFamily | None = None,
        seed_assigner: SeedAssigner | None = None,
        n_shards: int = 8,
        executor=None,
    ) -> "StreamEngine":
        """Engine maintaining a :class:`StreamingPoisson` per instance."""
        if seed_assigner is None:
            seed_assigner = SeedAssigner()
        if rank_family is None:
            rank_family = UniformRanks()

        def factory(instance: object) -> StreamingPoisson:
            return StreamingPoisson(
                threshold=threshold,
                instance=instance,
                rank_family=rank_family,
                seed_assigner=seed_assigner,
            )

        engine = cls(factory, n_shards=n_shards, executor=executor)
        engine.sketch_config = {
            "kind": "poisson",
            "threshold": float(threshold),
            "rank_family": rank_family,
            "seed_assigner": seed_assigner,
        }
        return engine

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def _instance_shards(self, instance: object) -> list:
        shards = self._shards.get(instance)
        if shards is None:
            shards = [self._factory(instance) for _ in range(self.n_shards)]
            self._shards[instance] = shards
        return shards

    def ingest_jobs(
        self, instance: object, keys: Sequence[object], values
    ) -> list[IngestJob]:
        """Validate one batch and split it into per-shard update jobs.

        This is the planning half of :meth:`ingest`: it hashes the key
        column, routes each update to its shard, creates missing sketches,
        and advances ``n_updates`` — but applies nothing.  Callers that
        need to interleave the per-shard work with their own concurrency
        control (e.g. the per-shard locking of
        :class:`repro.service.SketchStore`) run the returned jobs through
        :meth:`run_job` themselves.
        """
        # NumPy key columns stay columnar end to end: they hash without
        # per-key Python objects and shard-split by fancy indexing.
        columnar = isinstance(keys, np.ndarray)
        if columnar:
            if keys.ndim != 1:
                raise InvalidParameterError(
                    f"a key column must be 1-D, got shape {keys.shape}"
                )
        else:
            keys = list(keys)
        values = np.asarray(values, dtype=float)
        if values.shape != (len(keys),):
            raise InvalidParameterError(
                "keys and values must have matching length"
            )
        # Validate the whole batch before any state (sketch creation,
        # counters, shard contents) changes: a bad value must not leave
        # some shards updated and others not.  NaN fails every ordering
        # comparison, so ``values.min() < 0`` alone would wave NaN
        # through and poison the sketch heap invariants — check
        # finiteness explicitly first.
        if values.size:
            finite = np.isfinite(values)
            if not finite.all():
                bad = int(np.flatnonzero(~finite)[0])
                raise InvalidParameterError(
                    f"update values must be finite, got {float(values[bad])!r} "
                    f"at row {bad}"
                )
            if float(values.min()) < 0.0:
                raise InvalidParameterError("values must be nonnegative")
        shards = self._instance_shards(instance)
        hashes = key_hashes(keys)
        self.n_updates += len(keys)
        self.change_tick += 1
        if self.n_shards == 1:
            self.shard_updates[0] += len(keys)
            return [IngestJob(0, shards[0], keys, values, hashes)]
        shard_ids = (hashes % np.uint64(self.n_shards)).astype(np.intp)
        jobs = []
        for shard in range(self.n_shards):
            index = np.nonzero(shard_ids == shard)[0]
            if index.size == 0:
                continue
            self.shard_updates[shard] += int(index.size)
            jobs.append(
                IngestJob(
                    shard,
                    shards[shard],
                    keys[index] if columnar else [keys[i] for i in index],
                    values[index],
                    hashes[index],
                )
            )
        return jobs

    @staticmethod
    def run_job(job: IngestJob) -> None:
        """Apply one shard job produced by :meth:`ingest_jobs`."""
        job.sketch.update_many(job.keys, job.values, hashes=job.hashes)

    def ingest(self, instance: object, keys: Sequence[object], values) -> None:
        """Ingest one batch of ``(key, value)`` updates for ``instance``.

        ``keys`` and ``values`` are parallel columns; integer key columns
        are hashed fully vectorised.
        """
        jobs = self.ingest_jobs(instance, keys, values)
        if self.executor is not None:
            list(self.executor.map(self.run_job, jobs))
        else:
            for job in jobs:
                self.run_job(job)

    def ingest_updates(self, instances: Sequence[object], keys, values) -> None:
        """Ingest a mixed batch of ``(instance, key, value)`` updates."""
        instances = list(instances)
        keys = list(keys)
        if len(instances) != len(keys):
            raise InvalidParameterError(
                "instances and keys must have matching length"
            )
        values = np.asarray(values, dtype=float)
        if values.shape != (len(keys),):
            raise InvalidParameterError(
                "keys and values must have matching length"
            )
        groups: dict[object, list[int]] = {}
        for position, label in enumerate(instances):
            groups.setdefault(label, []).append(position)
        for label, positions in groups.items():
            self.ingest(
                label, [keys[i] for i in positions], values[positions]
            )

    def ingest_stream(
        self, stream: Iterable[tuple[object, object, float]],
        batch_size: int = 4096,
    ) -> None:
        """Ingest an iterable of ``(instance, key, value)`` updates in
        batches of ``batch_size``."""
        if batch_size <= 0:
            raise InvalidParameterError(
                f"batch_size must be positive, got {batch_size}"
            )
        instances: list[object] = []
        keys: list[object] = []
        values: list[float] = []
        for instance, key, value in stream:
            instances.append(instance)
            keys.append(key)
            values.append(float(value))
            if len(keys) >= batch_size:
                self.ingest_updates(instances, keys, np.asarray(values))
                instances, keys, values = [], [], []
        if keys:
            self.ingest_updates(instances, keys, np.asarray(values))

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    @property
    def instance_labels(self) -> list[object]:
        """Labels of the instances seen so far, in first-seen order."""
        return list(self._shards)

    def shard_sketches(self, instance: object) -> list:
        """The live per-shard sketches of ``instance`` (not copies)."""
        if instance not in self._shards:
            raise InvalidParameterError(f"unknown instance {instance!r}")
        return list(self._shards[instance])

    def sketch(self, instance: object):
        """The merged sketch of ``instance`` across all shards."""
        return merge_sketches(self.shard_sketches(instance))

    def sample(self, instance: object):
        """Offline-sample snapshot of ``instance`` (bottom-k or Poisson)."""
        return self.sketch(instance).to_sample()

    def sketches(self) -> dict[object, object]:
        """Merged sketches of every instance, keyed by label."""
        return {label: self.sketch(label) for label in self._shards}

    def probe(self) -> dict:
        """Cheap state probe for monitoring and shutdown decisions.

        Touches only counters and per-shard lengths — no merging, no
        copying — so callers (the HTTP ``/metrics`` endpoint, the
        graceful-shutdown dirty check) can poll it on every request.
        ``change_tick`` is session-local: it advances on every ingest
        plan and engine merge and resets to 0 on restore, so comparing
        two probes tells whether the engine mutated in between.
        """
        return {
            "change_tick": self.change_tick,
            "n_updates": self.n_updates,
            "n_instances": len(self._shards),
            "n_shards": self.n_shards,
            "shard_updates": list(self.shard_updates),
            "retained_keys": sum(
                len(sketch)
                for shards in self._shards.values()
                for sketch in shards
            ),
        }

    # ------------------------------------------------------------------
    # State export / merge
    # ------------------------------------------------------------------
    def _require_config(self) -> dict:
        if self.sketch_config is None:
            raise InvalidParameterError(
                "only engines built via StreamEngine.bottom_k() or "
                "StreamEngine.poisson() record the configuration needed "
                "to export state or merge engines"
            )
        return self.sketch_config

    def state_dict(self) -> dict:
        """Complete engine state: configuration plus per-shard sketch
        states of every instance (see the sketches' ``state_dict``)."""
        config = self._require_config()
        assigner = config["seed_assigner"]
        state = {
            "kind": config["kind"],
            "rank_family": config["rank_family"],
            "salt": assigner.salt,
            "coordinated": assigner.coordinated,
            "n_shards": self.n_shards,
            "n_updates": self.n_updates,
            "instances": {
                label: tuple(sketch.state_dict() for sketch in shards)
                for label, shards in self._shards.items()
            },
        }
        if config["kind"] == "bottom_k":
            state["k"] = config["k"]
        else:
            state["threshold"] = config["threshold"]
        return state

    @classmethod
    def from_state(cls, state: Mapping) -> "StreamEngine":
        """Rebuild an engine from a :meth:`state_dict` snapshot."""
        kind = state["kind"]
        family = state["rank_family"]
        if isinstance(family, str):
            family = rank_family_from_name(family)
        assigner = SeedAssigner(
            salt=state["salt"], coordinated=bool(state["coordinated"])
        )
        if kind == "bottom_k":
            engine = cls.bottom_k(
                k=int(state["k"]),
                rank_family=family,
                seed_assigner=assigner,
                n_shards=int(state["n_shards"]),
            )
        elif kind == "poisson":
            engine = cls.poisson(
                threshold=float(state["threshold"]),
                rank_family=family,
                seed_assigner=assigner,
                n_shards=int(state["n_shards"]),
            )
        else:
            raise InvalidParameterError(
                f"unknown engine state kind {kind!r}; expected 'bottom_k' "
                "or 'poisson'"
            )
        engine.n_updates = int(state["n_updates"])
        for label, shard_states in state["instances"].items():
            shards = [
                sketch_from_state(shard_state)
                for shard_state in shard_states
            ]
            if len(shards) != engine.n_shards:
                raise InvalidParameterError(
                    f"instance {label!r} carries {len(shards)} shard "
                    f"sketches for an {engine.n_shards}-shard engine"
                )
            expected_type = (
                StreamingBottomK if kind == "bottom_k" else StreamingPoisson
            )
            for sketch in shards:
                if type(sketch) is not expected_type:
                    raise InvalidParameterError(
                        f"{kind} engine state carries a "
                        f"{type(sketch).__name__} shard sketch"
                    )
                if sketch.instance != label:
                    raise InvalidParameterError(
                        f"shard sketch of instance {sketch.instance!r} "
                        f"listed under label {label!r}"
                    )
                if (
                    sketch.rank_family != family
                    or sketch.seed_assigner != assigner
                    or (
                        kind == "bottom_k"
                        and sketch.k != engine.sketch_config["k"]
                    )
                    or (
                        kind == "poisson"
                        and sketch.threshold
                        != engine.sketch_config["threshold"]
                    )
                ):
                    raise InvalidParameterError(
                        "shard sketch configuration does not match the "
                        "engine configuration"
                    )
            engine._shards[label] = shards
        return engine

    def __eq__(self, other: object) -> bool:
        """Configuration, counters and per-shard sketch equality.

        Engines built from custom factories (no recorded configuration)
        only compare equal to themselves.
        """
        if type(other) is not type(self):
            return NotImplemented
        if self.sketch_config is None or other.sketch_config is None:
            return self is other
        if (
            self.sketch_config != other.sketch_config
            or self.n_shards != other.n_shards
            or self.n_updates != other.n_updates
            or set(self._shards) != set(other._shards)
        ):
            return False
        return all(
            self._shards[label] == other._shards[label]
            for label in self._shards
        )

    __hash__ = None

    def merge_from(self, other: "StreamEngine") -> None:
        """Fold another engine's sketches into this one, shard by shard.

        Both engines must share the same recorded configuration and shard
        count: sharding routes a key by ``hash % n_shards``, so equal
        shard counts guarantee that shard ``s`` of both engines holds the
        same key-space partition and per-shard merging is exact.  The
        other engine is left untouched.
        """
        config, other_config = self._require_config(), other._require_config()
        if config != other_config:
            raise InvalidParameterError(
                "cannot merge engines with different sketch configurations"
            )
        if self.n_shards != other.n_shards:
            raise InvalidParameterError(
                f"cannot merge engines with {self.n_shards} and "
                f"{other.n_shards} shards; sharding must partition the "
                "key space identically"
            )
        self.n_updates += other.n_updates
        self.change_tick += 1
        self.shard_updates = [
            mine + theirs
            for mine, theirs in zip(self.shard_updates, other.shard_updates)
        ]
        for label in other.instance_labels:
            other_shards = other.shard_sketches(label)
            mine = self._shards.get(label)
            if mine is None:
                self._shards[label] = [
                    merge_sketches([sketch]) for sketch in other_shards
                ]
            else:
                self._shards[label] = [
                    merge_sketches([ours, theirs])
                    for ours, theirs in zip(mine, other_shards)
                ]

    @staticmethod
    def _untouched(sketch) -> bool:
        """Whether a sketch has never seen an update (safe to replace)."""
        return (
            sketch.n_updates == 0
            and sketch.n_discarded_keys == 0
            and not sketch._values
        )

    def fold_delta(self, delta: "StreamEngine") -> None:
        """Fold a *freshly materialised* delta engine into this one,
        taking ownership of the delta's sketches.

        The multiprocess fan-in path of
        :class:`repro.service.SketchStore`: ``delta`` is a decoded
        shard-worker state that is discarded after the fold, so any
        shard this engine has never touched adopts the delta's sketch
        object wholesale — preserving the delta's bit-exact state, heap
        tie-break order included, instead of re-inserting its entries
        through the merge.  Shards with history on both sides fall back
        to the associative merge, which is state-equal but rebuilds
        entry order.  ``shard_updates`` advances by the adopted
        sketches' own update counters (exact: a shard's routed rows are
        precisely the rows its sketches counted), since the wire codec
        does not carry the engine-level counter.  The delta is emptied
        to prevent accidental sketch sharing.
        """
        config, delta_config = self._require_config(), delta._require_config()
        if config != delta_config:
            raise InvalidParameterError(
                "cannot fold engines with different sketch configurations"
            )
        if self.n_shards != delta.n_shards:
            raise InvalidParameterError(
                f"cannot fold engines with {self.n_shards} and "
                f"{delta.n_shards} shards; sharding must partition the "
                "key space identically"
            )
        self.n_updates += delta.n_updates
        self.change_tick += 1
        for label in delta.instance_labels:
            theirs = delta._shards[label]
            for shard, sketch in enumerate(theirs):
                self.shard_updates[shard] += sketch.n_updates
            mine = self._shards.get(label)
            if mine is None:
                self._shards[label] = list(theirs)
                continue
            self._shards[label] = [
                (
                    theirs_sketch
                    if self._untouched(ours_sketch)
                    else (
                        ours_sketch
                        if self._untouched(theirs_sketch)
                        else merge_sketches([ours_sketch, theirs_sketch])
                    )
                )
                for ours_sketch, theirs_sketch in zip(mine, theirs)
            ]
        delta._shards = {}
