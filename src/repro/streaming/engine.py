"""Sharded streaming ingestion of ``(instance, key, value)`` updates.

:class:`StreamEngine` is the entry point of the streaming path.  It accepts
batched NumPy columns of updates, routes each key to a shard by key hash
(the same hash pass that derives the key's seeds), and drives one sketch
per (instance, shard) pair with vectorised batch updates.  Because shards
partition the key space, per-shard sketches merge exactly
(:mod:`repro.streaming.merge`) into the sketch of the whole stream — the
shard-and-reduce shape that later distribution work builds on.

An optional executor (any object with a :meth:`map` method, e.g.
``concurrent.futures.ThreadPoolExecutor``) runs the per-shard updates of a
batch concurrently; by default they run inline.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Sequence

import numpy as np

from repro.exceptions import InvalidParameterError
from repro.sampling.ranks import RankFamily
from repro.sampling.seeds import SeedAssigner, key_hashes
from repro.streaming.merge import merge_sketches
from repro.streaming.sketch import StreamingBottomK, StreamingPoisson

__all__ = ["StreamEngine"]


class StreamEngine:
    """Shard-parallel ingestion engine over per-instance sketches.

    Parameters
    ----------
    sketch_factory:
        Callable ``instance -> sketch`` building an empty sketch of the
        instance; it is called once per (instance, shard).  All sketches of
        one instance must be configured identically — use the convenience
        constructors :meth:`bottom_k` and :meth:`poisson` for the common
        cases.
    n_shards:
        Number of key-hash shards per instance.
    executor:
        Optional executor with a ``map(fn, iterable)`` method used to run
        the per-shard work of a batch concurrently.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.sampling.seeds import SeedAssigner
    >>> engine = StreamEngine.bottom_k(
    ...     k=4, seed_assigner=SeedAssigner(salt=3, coordinated=True))
    >>> engine.ingest("day1", np.arange(100), np.ones(100))
    >>> len(engine.sample("day1"))
    4
    """

    def __init__(
        self,
        sketch_factory: Callable[[object], object],
        n_shards: int = 8,
        executor=None,
    ) -> None:
        if n_shards <= 0:
            raise InvalidParameterError(
                f"n_shards must be positive, got {n_shards}"
            )
        self._factory = sketch_factory
        self.n_shards = int(n_shards)
        self.executor = executor
        self._shards: dict[object, list] = {}
        self.n_updates = 0

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def bottom_k(
        cls,
        k: int,
        rank_family: RankFamily | None = None,
        seed_assigner: SeedAssigner | None = None,
        n_shards: int = 8,
        executor=None,
    ) -> "StreamEngine":
        """Engine maintaining a :class:`StreamingBottomK` per instance."""
        if seed_assigner is None:
            seed_assigner = SeedAssigner()

        def factory(instance: object) -> StreamingBottomK:
            return StreamingBottomK(
                k=k,
                instance=instance,
                rank_family=rank_family,
                seed_assigner=seed_assigner,
            )

        return cls(factory, n_shards=n_shards, executor=executor)

    @classmethod
    def poisson(
        cls,
        threshold: float,
        rank_family: RankFamily | None = None,
        seed_assigner: SeedAssigner | None = None,
        n_shards: int = 8,
        executor=None,
    ) -> "StreamEngine":
        """Engine maintaining a :class:`StreamingPoisson` per instance."""
        if seed_assigner is None:
            seed_assigner = SeedAssigner()

        def factory(instance: object) -> StreamingPoisson:
            return StreamingPoisson(
                threshold=threshold,
                instance=instance,
                rank_family=rank_family,
                seed_assigner=seed_assigner,
            )

        return cls(factory, n_shards=n_shards, executor=executor)

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def _instance_shards(self, instance: object) -> list:
        shards = self._shards.get(instance)
        if shards is None:
            shards = [self._factory(instance) for _ in range(self.n_shards)]
            self._shards[instance] = shards
        return shards

    def ingest(self, instance: object, keys: Sequence[object], values) -> None:
        """Ingest one batch of ``(key, value)`` updates for ``instance``.

        ``keys`` and ``values`` are parallel columns; integer key columns
        are hashed fully vectorised.
        """
        keys = list(keys)
        values = np.asarray(values, dtype=float)
        if values.shape != (len(keys),):
            raise InvalidParameterError(
                "keys and values must have matching length"
            )
        shards = self._instance_shards(instance)
        hashes = key_hashes(keys)
        self.n_updates += len(keys)
        if self.n_shards == 1:
            shards[0].update_many(keys, values, hashes=hashes)
            return
        shard_ids = (hashes % np.uint64(self.n_shards)).astype(np.intp)
        jobs = []
        for shard in range(self.n_shards):
            index = np.nonzero(shard_ids == shard)[0]
            if index.size == 0:
                continue
            jobs.append(
                (
                    shards[shard],
                    [keys[i] for i in index],
                    values[index],
                    hashes[index],
                )
            )

        def run(job) -> None:
            sketch, job_keys, job_values, job_hashes = job
            sketch.update_many(job_keys, job_values, hashes=job_hashes)

        if self.executor is not None:
            list(self.executor.map(run, jobs))
        else:
            for job in jobs:
                run(job)

    def ingest_updates(self, instances: Sequence[object], keys, values) -> None:
        """Ingest a mixed batch of ``(instance, key, value)`` updates."""
        instances = list(instances)
        keys = list(keys)
        if len(instances) != len(keys):
            raise InvalidParameterError(
                "instances and keys must have matching length"
            )
        values = np.asarray(values, dtype=float)
        if values.shape != (len(keys),):
            raise InvalidParameterError(
                "keys and values must have matching length"
            )
        groups: dict[object, list[int]] = {}
        for position, label in enumerate(instances):
            groups.setdefault(label, []).append(position)
        for label, positions in groups.items():
            self.ingest(
                label, [keys[i] for i in positions], values[positions]
            )

    def ingest_stream(
        self, stream: Iterable[tuple[object, object, float]],
        batch_size: int = 4096,
    ) -> None:
        """Ingest an iterable of ``(instance, key, value)`` updates in
        batches of ``batch_size``."""
        if batch_size <= 0:
            raise InvalidParameterError(
                f"batch_size must be positive, got {batch_size}"
            )
        instances: list[object] = []
        keys: list[object] = []
        values: list[float] = []
        for instance, key, value in stream:
            instances.append(instance)
            keys.append(key)
            values.append(float(value))
            if len(keys) >= batch_size:
                self.ingest_updates(instances, keys, np.asarray(values))
                instances, keys, values = [], [], []
        if keys:
            self.ingest_updates(instances, keys, np.asarray(values))

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    @property
    def instance_labels(self) -> list[object]:
        """Labels of the instances seen so far, in first-seen order."""
        return list(self._shards)

    def shard_sketches(self, instance: object) -> list:
        """The live per-shard sketches of ``instance`` (not copies)."""
        if instance not in self._shards:
            raise InvalidParameterError(f"unknown instance {instance!r}")
        return list(self._shards[instance])

    def sketch(self, instance: object):
        """The merged sketch of ``instance`` across all shards."""
        return merge_sketches(self.shard_sketches(instance))

    def sample(self, instance: object):
        """Offline-sample snapshot of ``instance`` (bottom-k or Poisson)."""
        return self.sketch(instance).to_sample()

    def sketches(self) -> dict[object, object]:
        """Merged sketches of every instance, keyed by label."""
        return {label: self.sketch(label) for label in self._shards}
