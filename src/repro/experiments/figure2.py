"""Figure 2: variance of the OR estimators as a function of ``p``.

The paper plots ``Var[OR^(HT)]``, ``Var[OR^(L)]`` and ``Var[OR^(U)]`` on the
data vectors ``(1, 1)`` ("no change") and ``(1, 0)`` ("change") for
``p_1 = p_2 = p``.  The L and U estimators dominate HT; asymptotically for
small ``p`` the variance on ``(1, 1)`` drops from ``~1/p^2`` to ``~1/(2p)``
and on ``(1, 0)`` to ``~1/(4 p^2)``.
"""

from __future__ import annotations

import numpy as np

from repro.core.or_estimators import OrObliviousHT, OrObliviousL, OrObliviousU
from repro.core.variance import exact_moments, or_ht_variance, or_l_variance
from repro.sampling.dispersed import ObliviousPoissonScheme

__all__ = ["run_figure2"]


def run_figure2(
    probabilities: list[float] | None = None,
) -> dict:
    """Regenerate Figure 2 (variance of OR^(HT), OR^(L), OR^(U) vs p)."""
    if probabilities is None:
        probabilities = np.geomspace(0.05, 0.9, 25).tolist()
    series: dict[str, list[float]] = {
        "p": [],
        "HT_(1,1)": [],
        "HT_(1,0)": [],
        "L_(1,1)": [],
        "L_(1,0)": [],
        "U_(1,1)": [],
        "U_(1,0)": [],
        "closed_form_L_(1,1)": [],
        "closed_form_L_(1,0)": [],
        "closed_form_HT": [],
    }
    for p in probabilities:
        pair = (float(p), float(p))
        scheme = ObliviousPoissonScheme(pair)
        estimators = {
            "HT": OrObliviousHT(pair),
            "L": OrObliviousL(pair),
            "U": OrObliviousU(pair),
        }
        series["p"].append(float(p))
        for name, estimator in estimators.items():
            for data, label in (((1.0, 1.0), "(1,1)"), ((1.0, 0.0), "(1,0)")):
                _, variance = exact_moments(estimator, scheme, data)
                series[f"{name}_{label}"].append(variance)
        series["closed_form_HT"].append(or_ht_variance(pair))
        series["closed_form_L_(1,1)"].append(or_l_variance(p, p, (1, 1)))
        series["closed_form_L_(1,0)"].append(or_l_variance(p, p, (1, 0)))
    return {"series": series}
