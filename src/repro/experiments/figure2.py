"""Figure 2: variance of the OR estimators as a function of ``p``.

The paper plots ``Var[OR^(HT)]``, ``Var[OR^(L)]`` and ``Var[OR^(U)]`` on the
data vectors ``(1, 1)`` ("no change") and ``(1, 0)`` ("change") for
``p_1 = p_2 = p``.  The L and U estimators dominate HT; asymptotically for
small ``p`` the variance on ``(1, 1)`` drops from ``~1/p^2`` to ``~1/(2p)``
and on ``(1, 0)`` to ``~1/(4 p^2)``.

Each curve is one :func:`~repro.exact.exact_moments_grid` sweep: the whole
``p`` grid is stacked into a single enumerated outcome batch and scored by
one per-row-probability grid kernel, reproducing the scalar per-point
enumeration bit for bit.
"""

from __future__ import annotations

import numpy as np

from repro.core.or_estimators import OrObliviousHT, OrObliviousL, OrObliviousU
from repro.core.variance import or_ht_variance, or_l_variance
from repro.exact import exact_moments_grid

__all__ = ["run_figure2"]


def run_figure2(
    probabilities: list[float] | None = None,
) -> dict:
    """Regenerate Figure 2 (variance of OR^(HT), OR^(L), OR^(U) vs p)."""
    if probabilities is None:
        probabilities = np.geomspace(0.05, 0.9, 25).tolist()
    grid = np.array([float(p) for p in probabilities])
    factories = {
        "HT": OrObliviousHT,
        "L": OrObliviousL,
        "U": OrObliviousU,
    }
    series: dict[str, list[float]] = {"p": grid.tolist()}
    for name, factory in factories.items():
        for data, label in (((1.0, 1.0), "(1,1)"), ((1.0, 0.0), "(1,0)")):
            _, variances = exact_moments_grid(factory, grid, data)
            series[f"{name}_{label}"] = variances.tolist()
    series["closed_form_L_(1,1)"] = [
        or_l_variance(p, p, (1, 1)) for p in grid
    ]
    series["closed_form_L_(1,0)"] = [
        or_l_variance(p, p, (1, 0)) for p in grid
    ]
    series["closed_form_HT"] = [or_ht_variance((p, p)) for p in grid]
    return {"series": series}
