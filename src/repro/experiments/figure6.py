"""Figure 6: sample size required for a target distinct-count accuracy.

For each per-instance set size ``n`` (both sets of size ``n``), Jaccard
coefficient ``J`` and target coefficient of variation ``cv``, the experiment
computes the per-instance expected sample size ``s = p n`` needed by the HT
and by the L distinct-count estimators, and the ratio ``s(L) / s(HT)``.

The paper's headline observations: the L estimator needs roughly a factor
``sqrt(1 - J)/2`` fewer samples when ``p`` is small, and when the sets are
similar (large ``J``) a constant number of samples suffices for a fixed cv.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.samplesize import required_sample_size

__all__ = ["run_figure6"]


def run_figure6(
    target_cvs: tuple[float, ...] = (0.1, 0.02),
    jaccards: tuple[float, ...] = (0.0, 0.5, 0.9, 1.0),
    n_values: tuple[float, ...] | None = None,
) -> dict:
    """Regenerate both panels of Figure 6."""
    if n_values is None:
        n_values = tuple(np.logspace(2, 10, 17))
    panels = {}
    for cv in target_cvs:
        panel: dict = {"n": list(n_values), "HT": {}, "L": {}, "ratio": {}}
        for jaccard in jaccards:
            ht_sizes = [
                required_sample_size("HT", n, jaccard, cv) for n in n_values
            ]
            l_sizes = [
                required_sample_size("L", n, jaccard, cv) for n in n_values
            ]
            panel["HT"][jaccard] = ht_sizes
            panel["L"][jaccard] = l_sizes
            panel["ratio"][jaccard] = [
                l / ht if ht > 0 else float("inf")
                for l, ht in zip(l_sizes, ht_sizes)
            ]
        panels[cv] = panel
    return {"panels": panels}
