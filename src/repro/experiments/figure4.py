"""Figure 4: variance of ``max^(HT)`` vs ``max^(L)`` for PPS samples.

With ``tau*_1 = tau*_2 = tau*`` the paper plots

* (A), (B): the normalised variances ``Var / (tau*)^2`` of both estimators
  as a function of ``min(v)/max(v)`` for ``rho = max(v)/tau*`` in
  ``{0.5, 0.01}``;
* (C): the variance ratio ``Var[HT] / Var[L]`` as a function of
  ``min(v)/max(v)`` for several values of ``rho``.

``Var[HT] / (tau*)^2 = rho^2 (1/rho^2 - 1) = 1 - rho^2`` independently of
``min(v)``, while ``Var[L]`` decreases as the two entries get closer.
"""

from __future__ import annotations

import numpy as np

from repro.core.max_weighted import MaxPpsHT, MaxPpsL

__all__ = ["run_figure4"]


def run_figure4(
    rho_values: tuple[float, ...] = (1.0, 0.99, 0.5, 0.1, 0.01),
    n_points: int = 21,
    tau_star: float = 1.0,
    grid_size: int = 1501,
) -> dict:
    """Regenerate Figure 4 (A)-(C).

    Returns, per ``rho``, the normalised variances of both estimators and
    the variance ratio along a ``min/max`` grid.
    """
    estimator_ht = MaxPpsHT((tau_star, tau_star))
    estimator_l = MaxPpsL((tau_star, tau_star))
    fractions = np.linspace(0.0, 1.0, n_points)
    panels = {}
    for rho in rho_values:
        top = float(rho) * tau_star
        # One batched variance sweep per panel: the whole min/max grid is a
        # (n_points, 2) value matrix scored by ``variance_many``.
        data_grid = np.column_stack(
            [np.full(n_points, top), fractions * top]
        )
        vars_ht = estimator_ht.variance_many(data_grid)
        vars_l = estimator_l.variance_many(data_grid, grid_size=grid_size)
        ratio = []
        for var_ht, var_l in zip(vars_ht, vars_l):
            if var_l <= 0.0:
                ratio.append(float("inf") if var_ht > 0.0 else 1.0)
            else:
                ratio.append(float(var_ht / var_l))
        panels[float(rho)] = {
            "min_over_max": fractions.tolist(),
            "normalized_var_HT": (vars_ht / tau_star ** 2).tolist(),
            "normalized_var_L": (vars_l / tau_star ** 2).tolist(),
            "var_ratio_HT_over_L": ratio,
        }
    return {"tau_star": tau_star, "panels": panels}
