"""Figure 3: the closed-form ``max^(L)`` estimator for two PPS samples.

Figure 3 is a table rather than a plot: the mapping of outcomes to
determining vectors and the estimate as a function of the determining
vector.  The reproduction evaluates the closed forms on a grid of
determining vectors and verifies, by numerical integration over the seeds,
that the resulting estimator is unbiased for every data vector in the grid
— which is the defining property of the table.
"""

from __future__ import annotations

import numpy as np

from repro.core.max_weighted import MaxPpsL
from repro.sampling.outcomes import VectorOutcome

__all__ = ["run_figure3"]


def run_figure3(
    tau_star: tuple[float, float] = (1.0, 1.0),
    n_grid: int = 7,
) -> dict:
    """Regenerate the Figure 3 table and verify its defining property.

    Returns the estimate values on a grid of determining vectors, the
    determining-vector mapping for representative outcomes, and the maximum
    absolute bias observed across a grid of data vectors.
    """
    estimator = MaxPpsL(tau_star)
    values = np.linspace(0.1, 1.2, n_grid) * max(tau_star)

    table = []
    for v1 in values:
        for v2 in values:
            if v2 > v1:
                continue
            table.append(
                {
                    "determining_vector": (float(v1), float(v2)),
                    "estimate": estimator.estimate_from_determining(v1, v2),
                }
            )

    # Determining-vector mapping for representative outcomes.
    sample_seeds = {0: 0.35, 1: 0.75}
    mapping = {
        "S={}": estimator.determining_vector(
            VectorOutcome(r=2, sampled=frozenset(), values={},
                          seeds=sample_seeds)
        ),
        "S={1}": estimator.determining_vector(
            VectorOutcome(r=2, sampled=frozenset({0}),
                          values={0: 0.6 * tau_star[0]}, seeds=sample_seeds)
        ),
        "S={2}": estimator.determining_vector(
            VectorOutcome(r=2, sampled=frozenset({1}),
                          values={1: 0.6 * tau_star[1]}, seeds=sample_seeds)
        ),
        "S={1,2}": estimator.determining_vector(
            VectorOutcome(
                r=2,
                sampled=frozenset({0, 1}),
                values={0: 0.6 * tau_star[0], 1: 0.3 * tau_star[1]},
                seeds=sample_seeds,
            )
        ),
    }

    # Unbiasedness sweep: the whole data grid goes through the batched
    # moments path (one integration per distinct value pair).
    pairs = np.array([(float(v1), float(v2)) for v1 in values for v2 in values])
    means, variances = estimator.moments_many(pairs)
    max_bias = 0.0
    bias_rows = []
    for (v1, v2), mean, variance in zip(pairs, means, variances):
        bias = float(mean) - max(v1, v2)
        max_bias = max(max_bias, abs(bias))
        bias_rows.append(
            {
                "data": (float(v1), float(v2)),
                "mean": float(mean),
                "variance": float(variance),
                "bias": bias,
            }
        )
    return {
        "tau_star": tuple(tau_star),
        "estimate_table": table,
        "determining_vector_mapping": mapping,
        "bias_check": bias_rows,
        "max_absolute_bias": max_bias,
    }
