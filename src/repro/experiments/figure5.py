"""Figure 5: the worked example (data, ranks, bottom-3 samples).

Figure 5 shows a 3-instances x 6-keys data set, per-key values of example
multi-instance functions, consistent (shared-seed) and independent PPS rank
assignments, and the resulting bottom-3 samples.  The reproduction computes
all three panels from the sampling substrate and compares against the values
printed in the paper.  (This is a worked 18-entry example — the one figure
with no variance sweep, so it has no vectorized-engine path to consume;
its output is pinned bit for bit by the golden snapshot suite.)
"""

from __future__ import annotations

from repro.core.functions import maximum, minimum, value_range
from repro.datasets.example_data import (
    FIGURE5_DATASET,
    FIGURE5_EXPECTED_BOTTOM3_INDEPENDENT,
    FIGURE5_EXPECTED_BOTTOM3_SHARED,
    FIGURE5_PAPER_PRINTED_BOTTOM3_SHARED,
    FIGURE5_SEEDS_INDEPENDENT,
    FIGURE5_SEEDS_SHARED,
)

__all__ = ["run_figure5"]


def _pps_rank(value: float, seed: float) -> float:
    """PPS rank ``u / v`` (infinite for zero values)."""
    if value <= 0.0:
        return float("inf")
    return seed / value

def _bottom_k(ranks: dict[int, float], k: int) -> set[int]:
    finite = [key for key, rank in ranks.items() if rank != float("inf")]
    return set(sorted(finite, key=lambda key: ranks[key])[:k])


def run_figure5(k: int = 3) -> dict:
    """Regenerate Figure 5 (B) and (C) and check them against the paper."""
    dataset = FIGURE5_DATASET
    keys = sorted(dataset.active_keys())
    labels = dataset.instance_labels

    function_rows = {
        "max(v1,v2)": {
            key: maximum(dataset.value_vector(key, [1, 2])) for key in keys
        },
        "max(v1,v2,v3)": {
            key: maximum(dataset.value_vector(key, [1, 2, 3])) for key in keys
        },
        "min(v1,v2)": {
            key: minimum(dataset.value_vector(key, [1, 2])) for key in keys
        },
        "RG(v1,v2,v3)": {
            key: value_range(dataset.value_vector(key, [1, 2, 3]))
            for key in keys
        },
    }

    shared_ranks = {
        label: {
            key: _pps_rank(dataset.value(label, key), FIGURE5_SEEDS_SHARED[key])
            for key in keys
        }
        for label in labels
    }
    independent_ranks = {
        label: {
            key: _pps_rank(
                dataset.value(label, key),
                FIGURE5_SEEDS_INDEPENDENT[label][key],
            )
            for key in keys
        }
        for label in labels
    }

    shared_samples = {
        label: _bottom_k(shared_ranks[label], k) for label in labels
    }
    independent_samples = {
        label: _bottom_k(independent_ranks[label], k) for label in labels
    }

    return {
        "function_rows": function_rows,
        "shared_seed_ranks": shared_ranks,
        "independent_ranks": independent_ranks,
        "bottom3_shared": shared_samples,
        "bottom3_independent": independent_samples,
        "expected_bottom3_shared": FIGURE5_EXPECTED_BOTTOM3_SHARED,
        "paper_printed_bottom3_shared": FIGURE5_PAPER_PRINTED_BOTTOM3_SHARED,
        "expected_bottom3_independent": FIGURE5_EXPECTED_BOTTOM3_INDEPENDENT,
        "matches_paper": (
            shared_samples == FIGURE5_EXPECTED_BOTTOM3_SHARED
            and independent_samples == FIGURE5_EXPECTED_BOTTOM3_INDEPENDENT
        ),
    }
