"""Experiment harness: one module per figure of the paper's evaluation.

Each ``figureN`` module exposes a ``run_figureN`` function that returns the
numeric series the paper plots (plus the configuration used), and the
benchmarks in ``benchmarks/`` wrap these functions so that
``pytest benchmarks/ --benchmark-only`` regenerates every figure.

The variance figures consume the vectorized engines — the exact-enumeration
grid sweeps of :mod:`repro.exact` (Figures 1-2) and the batched PPS moment
sweeps (Figures 3, 4, 7) — and :func:`~repro.experiments.runner.
run_all_experiments` can fan the suite out to parallel worker processes
with per-experiment wall-time reporting.  Outputs are pinned to golden
snapshots of the scalar pipeline (``tests/experiments/test_golden.py``).
"""

from repro.experiments.figure1 import run_figure1
from repro.experiments.figure2 import run_figure2
from repro.experiments.figure3 import run_figure3
from repro.experiments.figure4 import run_figure4
from repro.experiments.figure5 import run_figure5
from repro.experiments.figure6 import run_figure6
from repro.experiments.figure7 import run_figure7
from repro.experiments.impossibility import run_impossibility
from repro.experiments.runner import run_all_experiments

__all__ = [
    "run_figure1",
    "run_figure2",
    "run_figure3",
    "run_figure4",
    "run_figure5",
    "run_figure6",
    "run_figure7",
    "run_impossibility",
    "run_all_experiments",
]
