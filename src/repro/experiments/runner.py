"""Run every reproduced experiment and collect the results.

Used by the examples and by ``EXPERIMENTS.md`` regeneration; the benchmark
harness calls the per-figure functions individually instead so that
pytest-benchmark can time them separately.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.experiments.figure1 import run_figure1
from repro.experiments.figure2 import run_figure2
from repro.experiments.figure3 import run_figure3
from repro.experiments.figure4 import run_figure4
from repro.experiments.figure5 import run_figure5
from repro.experiments.figure6 import run_figure6
from repro.experiments.figure7 import run_figure7
from repro.experiments.impossibility import run_impossibility

__all__ = ["EXPERIMENTS", "run_all_experiments"]

#: Registry of experiment name -> callable returning the result dictionary.
EXPERIMENTS: dict[str, Callable[[], dict]] = {
    "figure1": run_figure1,
    "figure2": run_figure2,
    "figure3": run_figure3,
    "figure4": run_figure4,
    "figure5": run_figure5,
    "figure6": run_figure6,
    "figure7": run_figure7,
    "impossibility": run_impossibility,
}


def run_all_experiments(
    names: list[str] | None = None, fast: bool = True
) -> dict[str, dict]:
    """Run the selected experiments (all by default) and return their
    results keyed by experiment name.

    With ``fast=True`` the heavier experiments use reduced grids / workload
    sizes so the full suite completes within a couple of minutes on a
    laptop.  Concrete point estimates stay enabled even in fast mode: the
    per-key estimates are assembled into columnar
    :class:`~repro.batch.OutcomeBatch` passes by the aggregate layer, so
    they no longer dominate the runtime the way the per-key scalar loop
    did.
    """
    selected = names if names is not None else list(EXPERIMENTS)
    results: dict[str, dict] = {}
    for name in selected:
        runner = EXPERIMENTS[name]
        if fast and name == "figure4":
            results[name] = runner(n_points=9, grid_size=801)
        elif fast and name == "figure7":
            results[name] = runner(
                sampled_fractions=(0.01, 0.05, 0.25),
                n_keys_per_instance=1200,
                include_point_estimates=True,
            )
        elif fast and name == "figure3":
            results[name] = runner(n_grid=5)
        else:
            results[name] = runner()
    return results
