"""Run every reproduced experiment and collect the results.

Used by the examples and by ``EXPERIMENTS.md`` regeneration; the benchmark
harness calls the per-figure functions individually instead so that
pytest-benchmark can time them separately.

The full suite can run its experiments in parallel worker processes
(:class:`concurrent.futures.ProcessPoolExecutor`) — experiments are
independent and deterministic, so the results are identical to the serial
run.  Per-experiment wall times are measured either way and can be
collected through the ``timings`` argument or printed with ``verbose``.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from collections.abc import Callable
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool

from repro.experiments.figure1 import run_figure1
from repro.experiments.figure2 import run_figure2
from repro.experiments.figure3 import run_figure3
from repro.experiments.figure4 import run_figure4
from repro.experiments.figure5 import run_figure5
from repro.experiments.figure6 import run_figure6
from repro.experiments.figure7 import run_figure7
from repro.experiments.impossibility import run_impossibility

__all__ = ["EXPERIMENTS", "FAST_KWARGS", "run_all_experiments"]

#: Registry of experiment name -> callable returning the result dictionary.
EXPERIMENTS: dict[str, Callable[[], dict]] = {
    "figure1": run_figure1,
    "figure2": run_figure2,
    "figure3": run_figure3,
    "figure4": run_figure4,
    "figure5": run_figure5,
    "figure6": run_figure6,
    "figure7": run_figure7,
    "impossibility": run_impossibility,
}

#: Reduced grids / workload sizes used by ``fast=True`` runs.
FAST_KWARGS: dict[str, dict] = {
    "figure3": {"n_grid": 5},
    "figure4": {"n_points": 9, "grid_size": 801},
    "figure7": {
        "sampled_fractions": (0.01, 0.05, 0.25),
        "n_keys_per_instance": 1200,
        "include_point_estimates": True,
    },
}


def _run_one(name: str, kwargs: dict) -> tuple[dict, float]:
    """Run one experiment (possibly in a worker process); returns the
    result with its wall time so parallel runs report per-experiment times
    measured inside the worker."""
    start = time.perf_counter()
    result = EXPERIMENTS[name](**kwargs)
    return result, time.perf_counter() - start


def run_all_experiments(
    names: list[str] | None = None,
    fast: bool = True,
    parallel: bool | None = None,
    max_workers: int | None = None,
    timings: dict[str, float] | None = None,
    verbose: bool = False,
) -> dict[str, dict]:
    """Run the selected experiments (all by default) and return their
    results keyed by experiment name.

    With ``fast=True`` the heavier experiments use reduced grids / workload
    sizes (:data:`FAST_KWARGS`) so the full suite completes in well under a
    second.  Per-key point estimates and variance sweeps run on the
    vectorized engines (:mod:`repro.exact`, the batched PPS moments), so
    even the full grids are dominated by NumPy kernels rather than Python
    loops.

    Parameters
    ----------
    names:
        Experiments to run; all of :data:`EXPERIMENTS` when ``None``.
    fast:
        Use the reduced fast-mode configurations.
    parallel:
        Run experiments in parallel worker processes.  Default: on for the
        full suite (``names is None``) when the multiprocessing start
        method is ``fork``, off otherwise — ``spawn`` platforms
        (macOS/Windows) re-import the calling script, which requires a
        ``__main__`` guard, so they must opt in explicitly.  A broken
        worker pool falls back to the serial path (experiments are
        deterministic, so the results are identical).
    max_workers:
        Worker-process cap for the parallel path; defaults to
        ``min(n_experiments, os.cpu_count())``.
    timings:
        Optional dictionary; filled with per-experiment wall-clock seconds
        (measured inside the worker for parallel runs).
    verbose:
        Print a per-experiment wall-time report.
    """
    selected = names if names is not None else list(EXPERIMENTS)
    if parallel is None:
        parallel = (
            names is None and multiprocessing.get_start_method() == "fork"
        )
    jobs = [
        (name, FAST_KWARGS.get(name, {}) if fast else {})
        for name in selected
    ]
    collected: dict[str, float] = {}
    results: dict[str, dict] = {}
    if parallel and len(jobs) > 1:
        workers = max_workers or min(len(jobs), os.cpu_count() or 1)
        try:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = {
                    name: pool.submit(_run_one, name, kwargs)
                    for name, kwargs in jobs
                }
                for name, _ in jobs:
                    results[name], collected[name] = futures[name].result()
        except BrokenProcessPool:
            results.clear()
            collected.clear()
            parallel = False
    if not (parallel and len(jobs) > 1):
        for name, kwargs in jobs:
            results[name], collected[name] = _run_one(name, kwargs)
    if timings is not None:
        timings.update(collected)
    if verbose:
        for name, _ in jobs:
            print(f"{name:15s} {collected[name]:8.3f} s")
        print(f"{'total':15s} {sum(collected.values()):8.3f} s")
    return results
