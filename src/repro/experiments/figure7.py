"""Figure 7: max-dominance estimation on two traffic instances.

The paper samples two consecutive hours of destination-IP flow counts with
independent Poisson PPS samples (known seeds) and plots the normalised
variance ``sum_h Var[max-hat(h)] / (sum_h max(h))^2`` of the HT and the L
estimators as a function of the percentage of sampled keys; the measured
variance ratio on that data set is between 2.45 and 2.7.

The proprietary trace is replaced by a matched synthetic Zipf workload (see
DESIGN.md).  The whole pipeline is batched: ``tau_star`` is solved by a
vectorised bisection, the exact per-key variances run through the
``variance_many`` column sweeps (the ``max^(L)`` seed integration is
evaluated once per distinct value pair — flow counts are integers, so keys
outnumber distinct pairs ~6x), and the optional concrete estimates are one
columnar ``OutcomeBatch`` pass per sampling rate.
"""

from __future__ import annotations


from repro.aggregates.dominance import (
    max_dominance_estimates,
    max_dominance_exact_variances,
    tau_star_for_sampling_fraction,
)
from repro.datasets.synthetic import zipf_traffic_pair
from repro.sampling.seeds import SeedAssigner

__all__ = ["run_figure7"]


def run_figure7(
    sampled_fractions: tuple[float, ...] = (0.005, 0.01, 0.02, 0.05, 0.1, 0.25, 0.5),
    n_keys_per_instance: int = 3000,
    n_common_keys: int | None = None,
    total_flows: float = 6.0e4,
    grid_size: int = 801,
    include_point_estimates: bool = True,
    rng_seed: int = 7,
) -> dict:
    """Regenerate Figure 7 on the synthetic traffic substitute.

    Parameters are scaled down by default so the experiment runs in seconds;
    pass ``n_keys_per_instance=24_500`` and ``total_flows=5.5e5`` for the
    paper-scale workload.
    """
    if n_common_keys is None:
        n_common_keys = int(round(n_keys_per_instance * 0.45))
    dataset = zipf_traffic_pair(
        n_keys_per_instance=n_keys_per_instance,
        n_common_keys=n_common_keys,
        total_flows=total_flows,
        rng=rng_seed,
    )
    labels = ("hour1", "hour2")
    true_dominance = dataset.max_dominance(labels)
    rows = []
    for fraction in sampled_fractions:
        tau_star = tuple(
            tau_star_for_sampling_fraction(
                dataset.instance(label).values(), fraction
            )
            for label in labels
        )
        var_ht, var_l = max_dominance_exact_variances(
            dataset, labels, tau_star, grid_size=grid_size
        )
        row = {
            "sampled_fraction": fraction,
            "tau_star": tau_star,
            "normalized_var_HT": var_ht / true_dominance ** 2,
            "normalized_var_L": var_l / true_dominance ** 2,
            "var_ratio_HT_over_L": var_ht / var_l if var_l > 0 else float("inf"),
        }
        if include_point_estimates:
            estimate = max_dominance_estimates(
                dataset,
                labels,
                tau_star,
                seed_assigner=SeedAssigner(salt=rng_seed),
            )
            row["point_estimate_HT"] = estimate.ht
            row["point_estimate_L"] = estimate.l
            row["n_sampled_keys"] = estimate.n_sampled_keys
        rows.append(row)
    return {
        "true_max_dominance": true_dominance,
        "n_distinct_keys": dataset.distinct_count(labels),
        "rows": rows,
        "ratio_range": (
            min(row["var_ratio_HT_over_L"] for row in rows),
            max(row["var_ratio_HT_over_L"] for row in rows),
        ),
    }
