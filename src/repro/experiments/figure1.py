"""Figure 1: max estimators over two weight-oblivious Poisson samples.

The paper fixes ``p_1 = p_2 = 1/2`` and plots the variance ratios
``Var[max^(L)] / Var[max^(HT)]`` and ``Var[max^(U)] / Var[max^(HT)]`` as a
function of ``min(v) / max(v)``, alongside the estimate tables of the three
estimators.  This module regenerates both the ratio curves and the estimate
tables.

The whole ``min/max`` grid is swept through the vectorized
exact-enumeration engine: one stacked
:func:`~repro.exact.exact_moments_value_grid` call per estimator scores
every (grid point, outcome) pair in a single batch kernel, reproducing the
scalar per-point enumeration bit for bit.
"""

from __future__ import annotations

import numpy as np

from repro.core.max_oblivious import MaxObliviousHT, MaxObliviousL, MaxObliviousU
from repro.exact import exact_moments_value_grid
from repro.sampling.dispersed import ObliviousPoissonScheme
from repro.sampling.outcomes import VectorOutcome

__all__ = ["run_figure1"]


def _estimate_table(estimator, v1: float, v2: float) -> dict[str, float]:
    """Estimates of an estimator on the four possible outcomes."""
    outcomes = {
        "S={}": VectorOutcome.from_vector((v1, v2), set()),
        "S={1}": VectorOutcome.from_vector((v1, v2), {0}),
        "S={2}": VectorOutcome.from_vector((v1, v2), {1}),
        "S={1,2}": VectorOutcome.from_vector((v1, v2), {0, 1}),
    }
    return {label: estimator.estimate(outcome) for label, outcome in outcomes.items()}


def run_figure1(
    probability: float = 0.5,
    n_points: int = 41,
    max_value: float = 1.0,
) -> dict:
    """Regenerate Figure 1.

    Returns a dictionary with the ``min/max`` grid, the variance of each
    estimator along the grid (with ``max(v)`` fixed to ``max_value``), the
    two variance-ratio series the paper plots, and the estimate tables for a
    representative data vector.
    """
    probabilities = (probability, probability)
    scheme = ObliviousPoissonScheme(probabilities)
    estimators = {
        "HT": MaxObliviousHT(probabilities),
        "L": MaxObliviousL(probabilities),
        "U": MaxObliviousU(probabilities),
    }
    ratios = np.linspace(0.0, 1.0, n_points)
    values_grid = np.column_stack(
        [np.full(n_points, max_value), ratios * max_value]
    )
    variances: dict[str, list[float]] = {}
    for name, estimator in estimators.items():
        _, variance_curve = exact_moments_value_grid(
            estimator, scheme, values_grid
        )
        variances[name] = variance_curve.tolist()
    var_ht = np.array(variances["HT"])
    series = {
        "min_over_max": ratios.tolist(),
        "variance": {name: values for name, values in variances.items()},
        "var_ratio_L_over_HT": (np.array(variances["L"]) / var_ht).tolist(),
        "var_ratio_U_over_HT": (np.array(variances["U"]) / var_ht).tolist(),
    }
    tables = {
        name: _estimate_table(estimator, 1.0, 0.4)
        for name, estimator in estimators.items()
    }
    return {
        "probability": probability,
        "series": series,
        "estimate_tables_at_(1.0,0.4)": tables,
    }
