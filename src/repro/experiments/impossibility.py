"""Section 6: impossibility of estimation with unknown seeds.

Theorem 6.1 shows that, over independent weighted samples with *unknown*
seeds and ``p_1 + p_2 < 1``, no unbiased nonnegative estimator exists for OR
(and more generally the ``ell``-th largest entry, ``ell < r``), and none
exists for XOR / the exponentiated range regardless of the probabilities.

The experiment phrases existence as an LP feasibility problem over the
finite binary model and contrasts the unknown-seed and known-seed regimes,
quantifying the estimation power of reproducible randomization.
"""

from __future__ import annotations

from repro.core.feasibility import (
    binary_known_seed_model,
    binary_unknown_seed_model,
    unbiased_nonnegative_exists,
)
from repro.core.functions import boolean_or, boolean_xor

__all__ = ["run_impossibility"]


def run_impossibility(
    probability_pairs: tuple[tuple[float, float], ...] = (
        (0.3, 0.3),
        (0.2, 0.5),
        (0.6, 0.6),
        (0.7, 0.4),
    ),
) -> dict:
    """Check existence of unbiased nonnegative OR / XOR estimators."""
    rows = []
    for p1, p2 in probability_pairs:
        unknown = binary_unknown_seed_model((p1, p2))
        known = binary_known_seed_model((p1, p2))
        rows.append(
            {
                "p": (p1, p2),
                "p1_plus_p2": p1 + p2,
                "or_unknown_seeds_feasible": unbiased_nonnegative_exists(
                    unknown, boolean_or
                ).feasible,
                "or_known_seeds_feasible": unbiased_nonnegative_exists(
                    known, boolean_or
                ).feasible,
                "xor_unknown_seeds_feasible": unbiased_nonnegative_exists(
                    unknown, boolean_xor
                ).feasible,
                "xor_known_seeds_feasible": unbiased_nonnegative_exists(
                    known, boolean_xor
                ).feasible,
            }
        )
    return {"rows": rows}
