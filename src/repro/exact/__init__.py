"""Vectorized exact-enumeration engine.

Enumerates the ``2^r`` outcome space of a weight-oblivious Poisson scheme
once as a columnar :class:`~repro.batch.OutcomeBatch` and computes exact
estimator moments as probability-weighted column reductions — the hot path
behind the paper's variance figures.  The scalar reference
(:func:`repro.core.variance.exact_moments`) stays authoritative: every
function here agrees with it bit for bit and raises the same exceptions.

* :func:`enumerate_outcome_batch` — the outcome space + probability vector;
* :func:`exact_moments_vectorized` — drop-in vectorized ``exact_moments``;
* :func:`exact_moments_value_grid` — one estimator, a grid of data vectors
  (Figure 1);
* :func:`exact_moments_grid` — an estimator family over a probability grid
  (Figure 2), via per-row-parameter grid kernels with a per-point fallback.
"""

from repro.exact.engine import accumulate_moments, exact_moments_vectorized
from repro.exact.enumeration import (
    enumerate_outcome_batch,
    enumeration_masks,
    outcome_probabilities,
)
from repro.exact.grid import exact_moments_grid, exact_moments_value_grid

__all__ = [
    "accumulate_moments",
    "enumerate_outcome_batch",
    "enumeration_masks",
    "outcome_probabilities",
    "exact_moments_vectorized",
    "exact_moments_grid",
    "exact_moments_value_grid",
]
