"""Vectorized exact moments over an enumerated outcome space.

The scalar reference (:func:`repro.core.variance.exact_moments`) walks the
``2^r`` outcomes of a weight-oblivious scheme in Python, calling
``estimator.estimate`` once per outcome.  The engine here computes the same
moments from columns: the outcome space is enumerated once as an
:class:`~repro.batch.OutcomeBatch` (:mod:`repro.exact.enumeration`), every
outcome is scored in one ``estimate_batch`` call, and the probability-
weighted mean and second moment are accumulated outcome column by outcome
column — the same sequential accumulation order as the scalar loop, so the
two paths agree bit for bit (not merely to round-off).

Zero-probability outcomes (entries with ``p_i = 1`` left unsampled) are
masked out of the accumulation, exactly as the scalar iterator skips them.
Variances are clamped at ``0.0``: ``second_moment - mean**2`` suffers
catastrophic cancellation for ``p -> 1`` and can come out a tiny negative
in both paths (the scalar reference applies the same clamp).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.core.estimator_base import VectorEstimator
from repro.exact.enumeration import enumerate_outcome_batch

__all__ = ["accumulate_moments", "exact_moments_vectorized"]


def accumulate_moments(
    probabilities: np.ndarray, estimates: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Probability-weighted mean and variance per row.

    ``probabilities`` and ``estimates`` are ``(n, m)`` matrices: ``n``
    independent outcome spaces (grid points) of ``m`` outcomes each.
    Accumulation runs column by column — the scalar enumeration order — so
    every float matches the scalar ``mean += probability * estimate`` loop
    bit for bit.  Zero-probability columns are masked out (the scalar
    iterator never yields them, and masking also protects against
    ``0 * inf`` from estimates of impossible outcomes).
    """
    probabilities = np.asarray(probabilities, dtype=np.float64)
    estimates = np.asarray(estimates, dtype=np.float64)
    if probabilities.shape != estimates.shape or probabilities.ndim != 2:
        raise ValueError(
            f"probabilities {probabilities.shape} and estimates "
            f"{estimates.shape} must be matching (n, m) matrices"
        )
    n, m = probabilities.shape
    mean = np.zeros(n, dtype=np.float64)
    second = np.zeros(n, dtype=np.float64)
    for j in range(m):
        weight = probabilities[:, j]
        value = np.where(weight > 0.0, estimates[:, j], 0.0)
        mean += weight * value
        second += weight * (value * value)
    return mean, np.maximum(second - mean * mean, 0.0)


def exact_moments_vectorized(
    estimator: VectorEstimator,
    scheme,
    values: Sequence[float],
) -> tuple[float, float]:
    """Vectorized twin of :func:`repro.core.variance.exact_moments`.

    Enumerates the outcome space of ``scheme`` on ``values`` as one
    columnar batch and scores it with ``estimator.estimate_batch``.
    Returns ``(mean, variance)``; agrees with the scalar reference bit for
    bit and raises the same exceptions on invalid inputs.
    """
    batch, probabilities = enumerate_outcome_batch(scheme, values)
    estimates = estimator.estimate_batch(batch)
    mean, variance = accumulate_moments(
        probabilities[None, :], estimates[None, :]
    )
    return float(mean[0]), float(variance[0])
