"""Columnar enumeration of a weight-oblivious scheme's outcome space.

Conditioned on a data vector, the outcome space of an
:class:`~repro.sampling.dispersed.ObliviousPoissonScheme` with ``r``
entries has exactly ``2^r`` outcomes — one per inclusion mask.  The
scalar path (:meth:`ObliviousPoissonScheme.iter_outcomes`) materialises
them one ``VectorOutcome`` at a time; this module builds the whole space
as a single :class:`~repro.batch.OutcomeBatch` plus the exact outcome
probability vector, so estimators can score every outcome in one
vectorized ``estimate_batch`` call.

Row order and per-row probabilities reproduce the scalar iterator
exactly: row ``m`` is the mask whose entry ``i`` is included iff bit
``r - 1 - i`` of ``m`` is set (the ``itertools.product`` order), and the
probability of each row is accumulated entry by entry in index order, so
every float matches the scalar product bit for bit.  Zero-probability
rows (entries with ``p_i = 1`` left unsampled) are kept in the batch;
the moment accumulators in :mod:`repro.exact.engine` mask them out, like
the scalar iterator skips them.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.batch.outcome_batch import OutcomeBatch
from repro.exceptions import InvalidParameterError

__all__ = [
    "enumeration_masks",
    "outcome_probabilities",
    "enumerate_outcome_batch",
]


def enumeration_masks(r: int) -> np.ndarray:
    """The ``(2^r, r)`` inclusion-mask matrix, in scalar-iterator order."""
    if r < 1:
        raise InvalidParameterError(f"r must be >= 1, got {r}")
    if r > 24:
        raise InvalidParameterError(
            f"refusing to enumerate 2^{r} outcomes; r must be <= 24"
        )
    codes = np.arange(2 ** r, dtype=np.uint32)
    shifts = np.arange(r - 1, -1, -1, dtype=np.uint32)
    return ((codes[:, None] >> shifts[None, :]) & 1).astype(bool)


def outcome_probabilities(
    sampled: np.ndarray, probabilities: np.ndarray
) -> np.ndarray:
    """Per-row outcome probabilities of an inclusion-mask matrix.

    ``probabilities`` may be a vector of length ``r`` (one scheme for all
    rows) or an ``(n, r)`` matrix (per-row inclusion probabilities, the
    grid case).  The product is accumulated in entry order, matching the
    scalar iterator's ``probability *= p if included else (1 - p)`` loop
    bit for bit.
    """
    probabilities = np.asarray(probabilities, dtype=np.float64)
    n, r = sampled.shape
    result = np.ones(n, dtype=np.float64)
    for i in range(r):
        column = probabilities[i] if probabilities.ndim == 1 else probabilities[:, i]
        result *= np.where(sampled[:, i], column, 1.0 - column)
    return result


def enumerate_outcome_batch(
    scheme, values: Sequence[float]
) -> tuple[OutcomeBatch, np.ndarray]:
    """The full outcome space of ``scheme`` on data ``values`` as a batch.

    Returns ``(batch, probabilities)`` where row ``m`` of the batch is the
    ``m``-th outcome of ``scheme.iter_outcomes(values)`` (including the
    zero-probability ones) and ``probabilities[m]`` its exact probability.
    """
    probabilities = np.asarray(scheme.probabilities, dtype=np.float64)
    r = len(probabilities)
    values = np.asarray(values, dtype=np.float64)
    if values.shape != (r,):
        raise InvalidParameterError(
            f"expected a vector with {r} entries, got {values.shape}"
        )
    sampled = enumeration_masks(r)
    batch = OutcomeBatch(
        values=np.broadcast_to(values, sampled.shape), sampled=sampled
    )
    return batch, outcome_probabilities(sampled, probabilities)
