"""Grid sweeps of exact moments — whole figure curves in a few kernel calls.

Two sweep axes cover the paper's variance figures:

:func:`exact_moments_value_grid`
    Fixed estimator and scheme, many data vectors (Figure 1 sweeps
    ``min(v)/max(v)``).  The ``2^r`` enumeration is tiled across the grid
    and scored with a single ``estimate_batch`` call.

:func:`exact_moments_grid`
    Fixed data vector, a grid of inclusion probabilities (Figure 2 sweeps
    ``p``).  Each grid point has its own estimator parameters, so the
    stacked batch is scored by a *grid kernel* — a variant of the
    :mod:`repro.batch.kernels` closed forms taking per-row probability
    columns.  Estimator families without a registered grid kernel fall
    back to one vectorized enumeration per grid point
    (:func:`~repro.exact.engine.exact_moments_vectorized`), so the sweep
    works for any estimator and the kernels are a pure fast path.

Both sweeps reproduce the scalar reference
(:func:`repro.core.variance.exact_moments` at every grid point) bit for
bit: enumeration order, per-outcome probabilities, kernel arithmetic and
moment accumulation all follow the scalar operation order exactly.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

import numpy as np

from repro.batch.kernels import (
    check_binary_columns,
    ht_oblivious_kernel,
    masked_row_max,
    max_l_r2_kernel,
    max_u_kernel,
    max_uas_kernel,
)
from repro.batch.outcome_batch import OutcomeBatch
from repro.core.coefficients import uniform_max_l_coefficients_grid
from repro.core.estimator_base import VectorEstimator
from repro.core.ht import HorvitzThompsonOblivious
from repro.core.max_oblivious import (
    MaxObliviousL,
    MaxObliviousU,
    MaxObliviousUAsymmetric,
)
from repro.core.or_estimators import OrObliviousL, OrObliviousU
from repro.exact.engine import accumulate_moments, exact_moments_vectorized
from repro.exact.enumeration import enumeration_masks, outcome_probabilities
from repro.exceptions import InvalidParameterError
from repro.sampling.dispersed import ObliviousPoissonScheme

__all__ = ["exact_moments_grid", "exact_moments_value_grid"]


def exact_moments_value_grid(
    estimator: VectorEstimator,
    scheme,
    values_grid,
) -> tuple[np.ndarray, np.ndarray]:
    """Exact moments of one estimator across a grid of data vectors.

    ``values_grid`` is ``(n_grid, r)``; returns ``(means, variances)`` of
    shape ``(n_grid,)``, equal bit for bit to calling
    :func:`repro.core.variance.exact_moments` per row.
    """
    probabilities = np.asarray(scheme.probabilities, dtype=np.float64)
    r = len(probabilities)
    values_grid = np.asarray(values_grid, dtype=np.float64)
    if values_grid.ndim != 2 or values_grid.shape[1] != r:
        raise InvalidParameterError(
            f"values grid must have shape (n_grid, {r}), "
            f"got {values_grid.shape}"
        )
    masks = enumeration_masks(r)
    n_grid, n_outcomes = values_grid.shape[0], masks.shape[0]
    sampled = np.tile(masks, (n_grid, 1))
    values = np.repeat(values_grid, n_outcomes, axis=0)
    batch = OutcomeBatch(values=values, sampled=sampled)
    estimates = estimator.estimate_batch(batch)
    outcome_probs = outcome_probabilities(masks, probabilities)
    return accumulate_moments(
        np.broadcast_to(outcome_probs, (n_grid, n_outcomes)),
        estimates.reshape(n_grid, n_outcomes),
    )


def exact_moments_grid(
    estimator_factory: Callable[[tuple[float, ...]], VectorEstimator],
    probability_grid,
    values: Sequence[float],
) -> tuple[np.ndarray, np.ndarray]:
    """Exact moments of an estimator family across a probability grid.

    Parameters
    ----------
    estimator_factory:
        Callable mapping a probability vector (one grid point) to the
        estimator instance, e.g. ``lambda p: OrObliviousL(p)``.
    probability_grid:
        ``(n_grid,)`` uniform probabilities (replicated across the ``r``
        entries) or ``(n_grid, r)`` per-entry probabilities.
    values:
        The fixed data vector, length ``r``.

    Returns
    -------
    ``(means, variances)`` of shape ``(n_grid,)``, equal bit for bit to
    constructing the estimator and scheme per grid point and calling
    :func:`repro.core.variance.exact_moments`.
    """
    values = np.asarray(values, dtype=np.float64)
    if values.ndim != 1:
        raise InvalidParameterError(
            f"values must be a vector, got shape {values.shape}"
        )
    r = values.shape[0]
    grid = np.asarray(probability_grid, dtype=np.float64)
    if grid.ndim == 1:
        grid = np.repeat(grid[:, None], r, axis=1)
    if grid.ndim != 2 or grid.shape[1] != r:
        raise InvalidParameterError(
            f"probability grid must have shape (n_grid,) or (n_grid, {r}), "
            f"got {np.asarray(probability_grid).shape}"
        )
    valid = (grid > 0.0) & (grid <= 1.0)  # NaN-safe: NaN compares False
    if not valid.all():
        offender = float(grid[~valid][0])
        raise InvalidParameterError(
            f"probability must be in (0, 1], got {offender}"
        )
    n_grid = grid.shape[0]
    if n_grid == 0:
        return np.zeros(0), np.zeros(0)

    representative = estimator_factory(tuple(grid[0]))
    kernel = _resolve_grid_kernel(representative)
    if kernel is None:
        return _per_point_sweep(estimator_factory, grid, values)

    masks = enumeration_masks(r)
    n_outcomes = masks.shape[0]
    sampled = np.tile(masks, (n_grid, 1))
    batch = OutcomeBatch(
        values=np.broadcast_to(values, sampled.shape), sampled=sampled
    )
    row_probabilities = np.repeat(grid, n_outcomes, axis=0)
    try:
        estimates = kernel(
            representative, batch.values, batch.sampled, row_probabilities
        )
    except _NoGridKernel:
        return _per_point_sweep(estimator_factory, grid, values)
    outcome_probs = outcome_probabilities(sampled, row_probabilities)
    return accumulate_moments(
        outcome_probs.reshape(n_grid, n_outcomes),
        estimates.reshape(n_grid, n_outcomes),
    )


def _per_point_sweep(
    estimator_factory, grid: np.ndarray, values: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Fallback: one vectorized enumeration per grid point."""
    means = np.empty(grid.shape[0])
    variances = np.empty(grid.shape[0])
    for index in range(grid.shape[0]):
        probabilities = tuple(grid[index])
        means[index], variances[index] = exact_moments_vectorized(
            estimator_factory(probabilities),
            ObliviousPoissonScheme(probabilities),
            values,
        )
    return means, variances


# ----------------------------------------------------------------------
# Grid kernels: per-row probability columns instead of fixed parameters.
# ----------------------------------------------------------------------
class _NoGridKernel(Exception):
    """Raised by a grid kernel that cannot handle this configuration."""


def _row_product(columns: np.ndarray) -> np.ndarray:
    """Row-wise product accumulated in column order (``math.prod`` twin)."""
    result = np.ones(columns.shape[0], dtype=np.float64)
    for i in range(columns.shape[1]):
        result *= columns[:, i]
    return result


def _uniform_rows(probabilities: np.ndarray) -> np.ndarray:
    return np.all(probabilities == probabilities[:, :1], axis=1)


def _max_l_uniform_rows(
    values: np.ndarray, sampled: np.ndarray, p_column: np.ndarray
) -> np.ndarray:
    """Theorem 4.2 tables with one coefficient row per outcome row.

    The column repeats each grid point ``2^r`` times (outcome tiling), so
    the ``O(r^2)`` recursion runs once per distinct probability and the
    rows are gathered back — each row's arithmetic is independent, so the
    result is bit-identical to running the recursion on the full column.
    """
    distinct, inverse = np.unique(p_column, return_inverse=True)
    alphas = uniform_max_l_coefficients_grid(values.shape[1], distinct)[
        inverse
    ]
    top = masked_row_max(values, sampled)
    phi = np.where(sampled, values, top[:, None])
    ordered = np.sort(phi, axis=1)[:, ::-1]
    estimates = (alphas * ordered).sum(axis=1)
    return np.where(sampled.any(axis=1), estimates, 0.0)


def _max_l_grid(estimator, values, sampled, probabilities):
    uniform = _uniform_rows(probabilities)
    if uniform.all():
        return _max_l_uniform_rows(values, sampled, probabilities[:, 0])
    if values.shape[1] != 2:
        raise _NoGridKernel  # non-uniform closed forms exist for r = 2 only
    estimates = max_l_r2_kernel(
        values, sampled, probabilities[:, 0], probabilities[:, 1]
    )
    if uniform.any():
        rows = np.nonzero(uniform)[0]
        estimates[rows] = _max_l_uniform_rows(
            values[rows], sampled[rows], probabilities[rows, 0]
        )
    return estimates


def _max_u_grid(estimator, values, sampled, probabilities):
    return max_u_kernel(
        values, sampled, probabilities[:, 0], probabilities[:, 1]
    )


def _max_uas_grid(estimator, values, sampled, probabilities):
    return max_uas_kernel(
        values, sampled, probabilities[:, 0], probabilities[:, 1]
    )


def _ht_grid(estimator, values, sampled, probabilities):
    full = sampled.all(axis=1)
    f_values = np.zeros(values.shape[0], dtype=np.float64)
    if estimator.batch_function is not None:
        if np.any(full):
            f_values[full] = estimator.batch_function(values[full])
    else:
        for row in np.nonzero(full)[0]:
            f_values[row] = float(estimator.function(list(values[row])))
    return ht_oblivious_kernel(f_values, full, _row_product(probabilities))


def _or_l_grid(estimator, values, sampled, probabilities):
    check_binary_columns(values, sampled)
    return _max_l_grid(estimator, values, sampled, probabilities)


def _or_u_grid(estimator, values, sampled, probabilities):
    check_binary_columns(values, sampled)
    return _max_u_grid(estimator, values, sampled, probabilities)


#: Estimator class -> grid kernel; resolved along the MRO, so subclasses of
#: :class:`HorvitzThompsonOblivious` (``max^(HT)``, ``OR^(HT)``) inherit
#: the HT kernel automatically.
_GRID_KERNELS: dict[type, Callable] = {
    MaxObliviousL: _max_l_grid,
    MaxObliviousU: _max_u_grid,
    MaxObliviousUAsymmetric: _max_uas_grid,
    OrObliviousL: _or_l_grid,
    OrObliviousU: _or_u_grid,
    HorvitzThompsonOblivious: _ht_grid,
}


def _resolve_grid_kernel(estimator: VectorEstimator):
    for cls in type(estimator).__mro__:
        if cls in _GRID_KERNELS:
            return _GRID_KERNELS[cls]
    return None
