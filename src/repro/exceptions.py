"""Exception hierarchy for the :mod:`repro` package."""


class ReproError(Exception):
    """Base class for all errors raised by the package."""


class EstimatorDerivationError(ReproError):
    """Raised when an estimator derivation fails.

    Algorithm 1 of the paper declares *failure* when the constraints have no
    solution (a data vector whose unprocessed outcomes have probability zero
    while the contribution of the processed outcomes does not match the
    target expectation).  The generic derivation engines raise this exception
    in that situation, and also when a numerical optimisation backend does
    not converge.
    """


class UnsupportedConfigurationError(ReproError):
    """Raised when an estimator is asked for a configuration the paper
    (and therefore this reproduction) does not define.

    Example: the closed-form ``max^(L)`` estimator for weight-oblivious
    Poisson sampling is only available for two entries with heterogeneous
    inclusion probabilities, or for any number of entries with a uniform
    inclusion probability (Theorem 4.2).
    """


class InvalidOutcomeError(ReproError):
    """Raised when an outcome does not match the sampling scheme of an
    estimator (wrong dimension, missing seeds, values outside the domain)."""


class InvalidParameterError(ReproError, ValueError):
    """Raised when a constructor or function argument is out of range."""


class SketchCodecError(ReproError, ValueError):
    """Raised by :mod:`repro.service.codec` when bytes cannot be decoded
    (wrong magic, unsupported format version, truncated or trailing data,
    corrupt payloads) or when state cannot be represented on the wire
    (custom rank families, factory-built engines, unsupported key types)."""


class WalCorruptionError(SketchCodecError):
    """Raised by :mod:`repro.wal` when a write-ahead-log segment fails
    validation in a way that cannot be a torn tail write: a checksum or
    framing error in the middle of a segment, a log-sequence-number gap,
    or a record that decodes to garbage despite a valid checksum.  The
    message always names the segment file and byte offset.  Torn tails
    (an interrupted final append) are *not* errors — recovery truncates
    them — so this exception firing means the log must not be trusted and
    recovery stops loudly instead of serving partial data."""


class ConfidenceUnavailableError(ReproError, ValueError):
    """Raised when a query asks for ``cv``/``ci90`` confidence reporting
    but no variance estimator applies to its shape.

    The paper's variance formulas cover distinct counts (HT and L
    variants) and single-instance subset sums (rank conditioning on
    bottom-k, Horvitz-Thompson on Poisson).  Dominance, L1 distance,
    estimator-weighted multi-instance sums and custom queries have no
    analyzable plug-in variance here, so — mirroring the
    independence-assumption rejection in :mod:`repro.streaming.query` —
    they are refused loudly instead of reporting a made-up interval."""


class UnknownStoreError(ReproError, KeyError):
    """Raised by :class:`repro.service.SketchStore` when a named engine is
    not registered in the store."""
