"""Vectorized NumPy kernels behind the batch estimators.

Each kernel is a pure function of column arrays (no estimator state) that
mirrors, branch for branch, the scalar closed form of one estimator in
:mod:`repro.core`.  Keeping the kernels free of any ``repro.core`` import
lets the estimator classes call them without an import cycle, and keeps
them independently testable against the scalar reference.

All kernels take the canonical :class:`~repro.batch.OutcomeBatch` column
layout — ``values``/``sampled``/``seeds`` of shape ``(n, r)`` — and return
a float64 estimate vector of shape ``(n,)``.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import InvalidOutcomeError

__all__ = [
    "masked_row_max",
    "ht_oblivious_kernel",
    "max_l_r2_kernel",
    "max_l_uniform_kernel",
    "max_u_kernel",
    "max_uas_kernel",
    "pps_max_ht_kernel",
    "pps_max_l_r2_kernel",
    "check_binary_columns",
    "known_seed_or_mapping",
]


def masked_row_max(values: np.ndarray, sampled: np.ndarray) -> np.ndarray:
    """Row-wise maximum over the sampled entries (0 for empty rows)."""
    if values.shape[1] == 2:
        # Column ops beat an axis-1 reduction on (n, 2) arrays by ~10x.
        top = np.maximum(
            np.where(sampled[:, 0], values[:, 0], -np.inf),
            np.where(sampled[:, 1], values[:, 1], -np.inf),
        )
        return np.where(sampled[:, 0] | sampled[:, 1], top, 0.0)
    filled = np.where(sampled, values, -np.inf)
    top = filled.max(axis=1)
    return np.where(sampled.any(axis=1), top, 0.0)


def ht_oblivious_kernel(
    f_values: np.ndarray,
    all_sampled: np.ndarray,
    all_sampled_probability: float,
) -> np.ndarray:
    """HT estimate ``f(v) / prod_i p_i`` on full rows, zero elsewhere."""
    return np.where(
        all_sampled, f_values / all_sampled_probability, 0.0
    )


def max_l_r2_kernel(
    values: np.ndarray,
    sampled: np.ndarray,
    p1: float,
    p2: float,
) -> np.ndarray:
    """``max^(L)`` for ``r = 2`` with arbitrary probabilities (Eq. (12)).

    ``p1`` / ``p2`` may be scalars or per-row ``(n,)`` columns (the
    probability-grid sweeps of :mod:`repro.exact.grid`).
    """
    # The r = 2 determining vector needs no row-max: an unsampled entry is
    # replaced by the other column (exact for single-sampled rows; empty
    # rows are zeroed at the end, and the columns are canonical 0 there).
    phi1 = np.where(sampled[:, 0], values[:, 0], values[:, 1])
    phi2 = np.where(sampled[:, 1], values[:, 1], values[:, 0])
    union = p1 + p2 - p1 * p2
    first_larger = phi1 >= phi2
    larger = np.where(first_larger, phi1, phi2)
    smaller = np.where(first_larger, phi2, phi1)
    p_larger = np.where(first_larger, p1, p2)
    estimates = (larger - (1.0 - p_larger) * smaller) / (p_larger * union)
    return np.where(sampled[:, 0] | sampled[:, 1], estimates, 0.0)


def max_l_uniform_kernel(
    values: np.ndarray,
    sampled: np.ndarray,
    alphas: np.ndarray,
) -> np.ndarray:
    """``max^(L)`` for uniform ``p`` and any ``r`` (Theorem 4.2 tables).

    The estimate is ``sum_i alpha_i u_i`` with ``u`` the descending sort of
    the determining vector (unsampled entries replaced by the largest
    sampled value).
    """
    top = masked_row_max(values, sampled)
    phi = np.where(sampled, values, top[:, None])
    ordered = np.sort(phi, axis=1)[:, ::-1]
    # Elementwise multiply + reduce (not a BLAS dot) so the accumulation
    # order matches the scalar reference bit for bit; the coefficient
    # tables cancel heavily for small p, where reordering costs digits.
    alphas = np.asarray(alphas, dtype=np.float64)
    estimates = (ordered * alphas[None, :]).sum(axis=1)
    return np.where(sampled.any(axis=1), estimates, 0.0)


def max_u_kernel(
    values: np.ndarray,
    sampled: np.ndarray,
    p1: float,
    p2: float,
) -> np.ndarray:
    """The symmetric ``max^(U)`` estimator for ``r = 2`` (Section 4.2).

    ``p1`` / ``p2`` may be scalars or per-row ``(n,)`` columns (the
    probability-grid sweeps of :mod:`repro.exact.grid`).
    """
    slack = 1.0 + np.maximum(0.0, 1.0 - p1 - p2)
    v1, v2 = values[:, 0], values[:, 1]
    s1, s2 = sampled[:, 0], sampled[:, 1]
    both = (
        np.maximum(v1, v2)
        - (v1 * (1.0 - p2) + v2 * (1.0 - p1)) / slack
    ) / (p1 * p2)
    return np.select(
        [s1 & s2, s1, s2],
        [both, v1 / (p1 * slack), v2 / (p2 * slack)],
        default=0.0,
    )


def max_uas_kernel(
    values: np.ndarray,
    sampled: np.ndarray,
    p1: float,
    p2: float,
) -> np.ndarray:
    """The asymmetric ``max^(Uas)`` estimator for ``r = 2`` (Section 4.2).

    ``p1`` / ``p2`` may be scalars or per-row ``(n,)`` columns (the
    probability-grid sweeps of :mod:`repro.exact.grid`).
    """
    denominator2 = np.maximum(1.0 - p1, p2)
    v1, v2 = values[:, 0], values[:, 1]
    s1, s2 = sampled[:, 0], sampled[:, 1]
    both = (
        np.maximum(v1, v2)
        - p2 * (1.0 - p1) / denominator2 * v2
        - (1.0 - p2) * v1
    ) / (p1 * p2)
    return np.select(
        [s1 & s2, s1, s2],
        [both, v1 / p1, v2 / denominator2],
        default=0.0,
    )


def pps_max_ht_kernel(
    values: np.ndarray,
    sampled: np.ndarray,
    seeds: np.ndarray,
    tau_star: np.ndarray,
) -> np.ndarray:
    """Inverse-probability max estimator for PPS samples with known seeds.

    Positive only when every unsampled entry's seed bound lies below the
    largest sampled value; the estimate is then
    ``M / prod_i min(1, M / tau_star_i)``.
    """
    tau_star = np.asarray(tau_star, dtype=np.float64)
    top = masked_row_max(values, sampled)
    if len(tau_star) == 2:
        bound_ok = (
            (sampled[:, 0] | (seeds[:, 0] * tau_star[0] <= top))
            & (sampled[:, 1] | (seeds[:, 1] * tau_star[1] <= top))
        )
        in_s_star = (top > 0.0) & bound_ok
        safe_top = np.where(in_s_star, top, 1.0)
        probability = np.minimum(1.0, safe_top / tau_star[0]) * np.minimum(
            1.0, safe_top / tau_star[1]
        )
    else:
        bound_ok = sampled | (seeds * tau_star[None, :] <= top[:, None])
        in_s_star = (top > 0.0) & bound_ok.all(axis=1)
        safe_top = np.where(in_s_star, top, 1.0)
        probability = np.minimum(
            1.0, safe_top[:, None] / tau_star[None, :]
        ).prod(axis=1)
    return np.where(in_s_star, safe_top / probability, 0.0)


def pps_max_l_r2_kernel(
    values: np.ndarray,
    sampled: np.ndarray,
    seeds: np.ndarray,
    tau1: float,
    tau2: float,
) -> np.ndarray:
    """The known-seed PPS ``max^(L)`` for ``r = 2`` (Figure 3 closed forms).

    Mirrors :meth:`repro.core.max_weighted.MaxPpsL.estimate`: the
    determining vector pairs each sampled value with the seed bound of the
    unsampled entry, and the piecewise closed forms (Eqs. (25), (26), (29),
    (30) with the corrected log argument) are applied after sorting.
    """
    v1, v2 = values[:, 0], values[:, 1]
    s1, s2 = sampled[:, 0], sampled[:, 1]
    nonempty = s1 | s2

    # Determining vector: a sampled entry keeps its value, the unsampled
    # entry of a single-sampled row gets min(seed bound, sampled value),
    # empty rows get (0, 0).
    phi1 = np.where(
        s1, v1, np.where(s2, np.minimum(seeds[:, 0] * tau1, v2), 0.0)
    )
    phi2 = np.where(
        s2, v2, np.where(s1, np.minimum(seeds[:, 1] * tau2, v1), 0.0)
    )
    if np.any((phi1 < 0.0) | (phi2 < 0.0)):
        raise InvalidOutcomeError("determining vector must be nonnegative")
    both_zero = (phi1 == 0.0) & (phi2 == 0.0)
    if np.any(~both_zero & (np.minimum(phi1, phi2) <= 0.0)):
        raise InvalidOutcomeError(
            "determining vector entries must be positive unless both are zero"
        )

    first_larger = phi1 >= phi2
    a = np.where(first_larger, phi1, phi2)
    b = np.where(first_larger, phi2, phi1)
    tau_a = np.where(first_larger, tau1, tau2)
    tau_b = np.where(first_larger, tau2, tau1)
    total = tau_a + tau_b

    estimates = np.zeros(len(a), dtype=np.float64)
    remaining = nonempty & ~both_zero

    # Eq. (25): equal entries.
    case = remaining & (a == b)
    if np.any(case):
        q_a = np.minimum(1.0, a[case] / tau_a[case])
        q_b = np.minimum(1.0, a[case] / tau_b[case])
        estimates[case] = a[case] / (q_a + (1.0 - q_a) * q_b)
        remaining &= ~case

    # Eq. (26): the smaller entry is certain (b >= tau_b).
    case = remaining & (b >= tau_b)
    if np.any(case):
        estimates[case] = b[case] + (a[case] - b[case]) / np.minimum(
            1.0, a[case] / tau_a[case]
        )
        remaining &= ~case

    # v >= tau_1: the estimate equals the larger entry.
    case = remaining & (a >= tau_a)
    if np.any(case):
        estimates[case] = a[case]
        remaining &= ~case

    # Eq. (29): both entries below both thresholds.
    case = remaining & (a <= tau_b)
    if np.any(case):
        a_c, b_c = a[case], b[case]
        ta, tb, tt = tau_a[case], tau_b[case], total[case]
        estimates[case] = (
            ta * tb / (tt - a_c)
            + ta * tb * (ta - a_c) / (a_c * tt)
            * np.log((tt - b_c) * a_c / (b_c * (tt - a_c)))
            + (a_c - b_c) * ta * tb * (ta - a_c)
            / (a_c * (tt - b_c) * (tt - a_c))
        )
        remaining &= ~case

    # Eq. (30), corrected log argument: b <= tau_b <= a <= tau_a.
    if np.any(remaining):
        a_c, b_c = a[remaining], b[remaining]
        ta, tb, tt = tau_a[remaining], tau_b[remaining], total[remaining]
        estimates[remaining] = (
            ta + tb - ta * tb / a_c
            + ta * tb * (ta - a_c) / (a_c * tt)
            * np.log((tt - b_c) * tb / (b_c * ta))
            + tb * (ta - a_c) * (tb - b_c) / ((tt - b_c) * a_c)
        )
    return estimates


def check_binary_columns(values: np.ndarray, sampled: np.ndarray) -> None:
    """Raise unless every sampled value is 0 or 1 (OR estimators)."""
    observed = values[sampled]
    bad = (observed != 0.0) & (observed != 1.0)
    if np.any(bad):
        offender = float(observed[bad][0])
        raise InvalidOutcomeError(
            "OR estimators require binary values; got "
            f"{offender!r} in the outcome"
        )


def known_seed_or_mapping(
    sampled: np.ndarray,
    seeds: np.ndarray,
    probabilities: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Map known-seed weighted binary outcomes to weight-oblivious ones.

    The columnar twin of
    :func:`repro.core.or_estimators.map_known_seed_outcome_to_oblivious`:
    sampled entries become value 1; unsampled entries whose seed certifies
    a zero (``u_i <= p_i``) become sampled with value 0.

    Returns the mapped ``(values, sampled)`` pair.
    """
    probabilities = np.asarray(probabilities, dtype=np.float64)
    mapped_sampled = sampled | (seeds <= probabilities[None, :])
    mapped_values = sampled.astype(np.float64)
    return mapped_values, mapped_sampled
