"""Columnar batch estimation engine.

The scalar estimators of :mod:`repro.core` consume one
:class:`~repro.sampling.outcomes.VectorOutcome` at a time, which makes
large sum aggregates pay a Python-interpreter loop per key.  This package
provides the columnar fast path:

``outcome_batch``
    :class:`OutcomeBatch` — ``n`` outcomes stored as ``(n, r)`` value /
    sampled-mask / seed arrays, interconvertible with scalar outcomes.
``kernels``
    Pure NumPy kernels mirroring each scalar closed form; used by the
    ``estimate_batch`` overrides on the core estimator classes.
``assemble``
    Builders that turn datasets + seed assigners into batches, hashing
    each key column once per instance.

The scalar API remains the reference implementation:
``VectorEstimator.estimate_many`` routes through ``estimate_batch`` when a
vectorized override exists and falls back to the scalar loop otherwise,
and the test-suite asserts bit-level (1e-12) parity between the paths.
"""

from repro.batch.assemble import (
    dataset_value_matrix,
    oblivious_outcome_batch,
    pps_outcome_batch,
)
from repro.batch.outcome_batch import OutcomeBatch

__all__ = [
    "OutcomeBatch",
    "dataset_value_matrix",
    "oblivious_outcome_batch",
    "pps_outcome_batch",
]
