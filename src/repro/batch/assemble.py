"""Assemble :class:`OutcomeBatch` columns from datasets and samplers.

These builders are the bridge between the aggregate layer (which knows
about keys, instances and seed assigners) and the batch estimation engine
(which only sees columns).  Each builder hashes the whole key column once
per instance through the vectorised :class:`~repro.sampling.seeds.
SeedAssigner` API instead of one hash per (key, instance) pair.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import TYPE_CHECKING

import numpy as np

from repro.batch.outcome_batch import OutcomeBatch
from repro.sampling.seeds import SeedAssigner

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.aggregates.dataset import MultiInstanceDataset

__all__ = [
    "dataset_value_matrix",
    "oblivious_outcome_batch",
    "pps_outcome_batch",
]


def dataset_value_matrix(
    dataset: "MultiInstanceDataset",
    keys: Sequence[object],
    labels: Sequence[object],
) -> np.ndarray:
    """The ``(n_keys, n_labels)`` value matrix of ``keys`` across ``labels``.

    Absent keys have value zero, exactly as in
    :meth:`~repro.aggregates.dataset.MultiInstanceDataset.value_vector`.
    """
    n = len(keys)
    matrix = np.zeros((n, len(labels)), dtype=np.float64)
    for column, label in enumerate(labels):
        assignment = dataset.instance(label)
        matrix[:, column] = np.fromiter(
            (assignment.get(key, 0.0) for key in keys),
            dtype=np.float64,
            count=n,
        )
    return matrix


def _seed_matrix(
    keys: Sequence[object],
    labels: Sequence[object],
    seed_assigner: SeedAssigner,
) -> np.ndarray:
    seeds = np.empty((len(keys), len(labels)), dtype=np.float64)
    for column, label in enumerate(labels):
        seeds[:, column] = seed_assigner.seeds(keys, instance=label)
    return seeds


def oblivious_outcome_batch(
    dataset: "MultiInstanceDataset",
    keys: Sequence[object],
    labels: Sequence[object],
    probabilities: Sequence[float],
    seed_assigner: SeedAssigner,
) -> tuple[np.ndarray, OutcomeBatch]:
    """Weight-oblivious Poisson outcomes of ``keys``, one batch row per key.

    Entry ``i`` of key ``h`` is sampled iff the reproducible seed of
    ``(h, labels[i])`` is at most ``probabilities[i]``.  Returns the full
    value matrix (for exact aggregates) alongside the batch.
    """
    values = dataset_value_matrix(dataset, keys, labels)
    seeds = _seed_matrix(keys, labels, seed_assigner)
    sampled = seeds <= np.asarray(probabilities, dtype=np.float64)[None, :]
    return values, OutcomeBatch(values=values, sampled=sampled)


def pps_outcome_batch(
    dataset: "MultiInstanceDataset",
    keys: Sequence[object],
    labels: Sequence[object],
    tau_star: Sequence[float],
    seed_assigner: SeedAssigner,
) -> tuple[np.ndarray, OutcomeBatch]:
    """Known-seed Poisson PPS outcomes of ``keys``, one batch row per key.

    Entry ``i`` of key ``h`` is sampled iff ``v_i(h) > 0`` and
    ``v_i(h) >= u_i(h) * tau_star[i]``; the batch carries the seed of every
    entry (the known-seeds model).
    """
    values = dataset_value_matrix(dataset, keys, labels)
    seeds = _seed_matrix(keys, labels, seed_assigner)
    thresholds = np.asarray(tau_star, dtype=np.float64)[None, :]
    sampled = (values > 0.0) & (values >= seeds * thresholds)
    return values, OutcomeBatch(values=values, sampled=sampled, seeds=seeds)
