"""Columnar batches of sampling outcomes.

A :class:`OutcomeBatch` holds ``n`` outcomes of sampling ``r``-entry value
vectors as three 2-D column-major-by-meaning arrays:

``values``
    ``(n, r)`` float64 — the sampled values.  Entries outside the sampled
    mask carry no information; they are stored as ``0.0`` and every batch
    kernel masks them out before use.
``sampled``
    ``(n, r)`` bool — ``sampled[k, i]`` is true iff entry ``i`` of outcome
    ``k`` was sampled (the set ``S`` of the scalar
    :class:`~repro.sampling.outcomes.VectorOutcome`).
``seeds``
    ``(n, r)`` float64 or ``None`` — in the known-seeds model, the uniform
    seed of *every* entry of every outcome; ``None`` in the unknown-seed
    model.  Seed availability is batch-wide: a batch either carries seeds
    for all outcomes or for none (mixed iterables cannot be converted and
    fall back to the scalar path).

The batch is the columnar twin of a list of ``VectorOutcome`` objects: the
row view :meth:`row` reconstructs the exact scalar outcome, and
:meth:`from_outcomes` converts a homogeneous iterable of scalar outcomes
into a batch.  Vectorized estimators consume whole batches through
:meth:`repro.core.estimator_base.VectorEstimator.estimate_batch`.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

import numpy as np

from repro.exceptions import InvalidOutcomeError
from repro.sampling.outcomes import VectorOutcome

__all__ = ["OutcomeBatch"]


class OutcomeBatch:
    """Columnar batch of ``n`` sampling outcomes of ``r``-entry vectors.

    Parameters
    ----------
    values:
        ``(n, r)`` array of sampled values.  Entries where ``sampled`` is
        false are ignored (and canonicalised to ``0.0``).
    sampled:
        ``(n, r)`` boolean inclusion mask.
    seeds:
        Optional ``(n, r)`` array of per-entry uniform seeds (known-seeds
        model).  ``None`` means the unknown-seed model for the whole batch.
    """

    __slots__ = ("values", "sampled", "seeds")

    def __init__(
        self,
        values: np.ndarray,
        sampled: np.ndarray,
        seeds: np.ndarray | None = None,
    ) -> None:
        sampled = np.asarray(sampled, dtype=bool)
        values = np.asarray(values, dtype=np.float64)
        if sampled.ndim != 2:
            raise InvalidOutcomeError(
                f"sampled mask must be 2-D (n, r), got shape {sampled.shape}"
            )
        if values.shape != sampled.shape:
            raise InvalidOutcomeError(
                f"values shape {values.shape} does not match sampled mask "
                f"shape {sampled.shape}"
            )
        if sampled.shape[1] < 1:
            raise InvalidOutcomeError(
                f"r must be positive, got {sampled.shape[1]}"
            )
        if seeds is not None:
            seeds = np.asarray(seeds, dtype=np.float64)
            if seeds.shape != sampled.shape:
                raise InvalidOutcomeError(
                    f"seeds shape {seeds.shape} does not match sampled mask "
                    f"shape {sampled.shape}"
                )
        # Canonical layout: unsampled entries carry 0.0 so that equal
        # batches compare equal regardless of how they were assembled.
        self.values = np.where(sampled, values, 0.0)
        self.sampled = sampled
        self.seeds = seeds

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def n_outcomes(self) -> int:
        """Number of outcomes (rows) in the batch."""
        return self.sampled.shape[0]

    @property
    def r(self) -> int:
        """Number of entries of each outcome (columns)."""
        return self.sampled.shape[1]

    @property
    def knows_seeds(self) -> bool:
        """Whether the batch carries seeds for all entries."""
        return self.seeds is not None

    def __len__(self) -> int:
        return self.n_outcomes

    def n_sampled(self) -> np.ndarray:
        """Per-outcome number of sampled entries, shape ``(n,)``."""
        return self.sampled.sum(axis=1)

    def any_sampled(self) -> np.ndarray:
        """Per-outcome "is nonempty" mask, shape ``(n,)``."""
        if self.r == 2:  # column ops beat axis-1 reductions on (n, 2)
            return self.sampled[:, 0] | self.sampled[:, 1]
        return self.sampled.any(axis=1)

    def all_sampled(self) -> np.ndarray:
        """Per-outcome "is full" mask, shape ``(n,)``."""
        if self.r == 2:
            return self.sampled[:, 0] & self.sampled[:, 1]
        return self.sampled.all(axis=1)

    def max_sampled(self) -> np.ndarray:
        """Per-outcome maximum sampled value (0 for empty outcomes)."""
        from repro.batch.kernels import masked_row_max

        return masked_row_max(self.values, self.sampled)

    # ------------------------------------------------------------------
    # Conversion to / from scalar outcomes
    # ------------------------------------------------------------------
    @classmethod
    def from_outcomes(
        cls, outcomes: Iterable[VectorOutcome]
    ) -> "OutcomeBatch":
        """Convert a homogeneous iterable of scalar outcomes to a batch.

        All outcomes must share the same ``r`` and the same seed
        availability; a heterogeneous iterable raises
        :class:`~repro.exceptions.InvalidOutcomeError` (callers such as
        ``estimate_many`` then fall back to the scalar loop).
        """
        outcomes = list(outcomes)
        if not outcomes:
            raise InvalidOutcomeError(
                "cannot infer r from an empty iterable of outcomes"
            )
        r = outcomes[0].r
        knows_seeds = outcomes[0].knows_seeds
        n = len(outcomes)
        values = np.zeros((n, r), dtype=np.float64)
        sampled = np.zeros((n, r), dtype=bool)
        seeds = np.zeros((n, r), dtype=np.float64) if knows_seeds else None
        for row, outcome in enumerate(outcomes):
            if outcome.r != r:
                raise InvalidOutcomeError(
                    f"outcome {row} has r={outcome.r}, batch has r={r}"
                )
            if outcome.knows_seeds != knows_seeds:
                raise InvalidOutcomeError(
                    "cannot batch outcomes with mixed seed availability"
                )
            for index in outcome.sampled:
                sampled[row, index] = True
                values[row, index] = outcome.values[index]
            if seeds is not None:
                for index in range(r):
                    seeds[row, index] = outcome.seeds[index]
        return cls(values=values, sampled=sampled, seeds=seeds)

    def row(self, index: int) -> VectorOutcome:
        """The scalar :class:`VectorOutcome` of row ``index``."""
        mask = self.sampled[index]
        sampled = frozenset(int(i) for i in np.nonzero(mask)[0])
        values = {int(i): float(self.values[index, i]) for i in sampled}
        seeds = None
        if self.seeds is not None:
            seeds = {
                i: float(self.seeds[index, i]) for i in range(self.r)
            }
        return VectorOutcome(
            r=self.r, sampled=sampled, values=values, seeds=seeds
        )

    def iter_outcomes(self) -> Iterator[VectorOutcome]:
        """Iterate over the rows as scalar outcomes (reference path)."""
        for index in range(self.n_outcomes):
            yield self.row(index)

    def to_outcomes(self) -> list[VectorOutcome]:
        """The batch as a list of scalar outcomes."""
        return list(self.iter_outcomes())

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"OutcomeBatch(n_outcomes={self.n_outcomes}, r={self.r}, "
            f"knows_seeds={self.knows_seeds})"
        )
