"""Existence of unbiased nonnegative estimators via linear programming.

Section 6 of the paper proves that with *unknown* seeds there is no unbiased
nonnegative estimator of the ``ell``-th largest entry (``ell < r``), of OR,
or of the exponentiated range over weighted Poisson samples (when
``p_1 + p_2 < 1``).  For a finite discrete model this existence question is
exactly a linear-programming feasibility problem:

    find  x >= 0  such that  sum_S P[S | v] x_S = f(v)  for every v in V.

:func:`unbiased_nonnegative_exists` solves it with SciPy's ``linprog``; the
model builders construct the outcome distributions for the binary
unknown-seed and known-seed weighted sampling models used in the paper's
arguments.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass
from itertools import product

import numpy as np
from scipy import optimize

from repro._validation import check_probability_vector
from repro.core.order_based import DiscreteModel

__all__ = [
    "FeasibilityResult",
    "unbiased_nonnegative_exists",
    "binary_unknown_seed_model",
    "binary_known_seed_model",
]


@dataclass(frozen=True)
class FeasibilityResult:
    """Outcome of a feasibility check.

    Attributes
    ----------
    feasible:
        Whether an unbiased nonnegative estimator exists for the model.
    estimates:
        A witness estimator (outcome -> estimate) when feasible, else
        ``None``.
    max_violation:
        The largest absolute unbiasedness violation of the returned witness
        (zero up to solver tolerance when feasible).
    """

    feasible: bool
    estimates: dict | None
    max_violation: float


def unbiased_nonnegative_exists(
    model: DiscreteModel,
    function: Callable[[tuple], float],
    tolerance: float = 1e-7,
) -> FeasibilityResult:
    """Check whether an unbiased nonnegative estimator exists on ``model``."""
    outcomes = list(model.outcomes)
    vectors = list(model.vectors)
    n = len(outcomes)
    a_eq = np.zeros((len(vectors), n))
    b_eq = np.zeros(len(vectors))
    for row, vector in enumerate(vectors):
        b_eq[row] = float(function(vector))
        for column, outcome in enumerate(outcomes):
            a_eq[row, column] = model.probability(vector, outcome)
    result = optimize.linprog(
        c=np.zeros(n),
        A_eq=a_eq,
        b_eq=b_eq,
        bounds=[(0.0, None)] * n,
        method="highs",
    )
    if not result.success:
        return FeasibilityResult(
            feasible=False, estimates=None, max_violation=float("inf")
        )
    violation = float(np.max(np.abs(a_eq @ result.x - b_eq), initial=0.0))
    feasible = violation <= tolerance
    estimates = (
        {outcome: float(x) for outcome, x in zip(outcomes, result.x)}
        if feasible
        else None
    )
    return FeasibilityResult(
        feasible=feasible, estimates=estimates, max_violation=violation
    )


def binary_unknown_seed_model(
    probabilities: Sequence[float],
    vectors: Sequence[Sequence[int]] | None = None,
) -> DiscreteModel:
    """Weighted Poisson sampling of binary data with *unknown* seeds.

    Only ``1``-valued entries can be sampled (entry ``i`` with probability
    ``p_i``); the outcome reveals nothing about unsampled entries.  The
    outcome label is therefore just the set of sampled entries.
    """
    probabilities = check_probability_vector(probabilities)
    r = len(probabilities)
    if vectors is None:
        vectors = list(product((0, 1), repeat=r))
    vectors = tuple(tuple(int(v) for v in vector) for vector in vectors)
    outcome_labels: dict = {}
    distributions: dict = {}
    for vector in vectors:
        distribution: dict = {}
        positive = [i for i in range(r) if vector[i] == 1]
        for mask in product((False, True), repeat=len(positive)):
            sampled = frozenset(
                index for index, included in zip(positive, mask) if included
            )
            probability = 1.0
            for index, included in zip(positive, mask):
                p = probabilities[index]
                probability *= p if included else (1.0 - p)
            distribution[sampled] = distribution.get(sampled, 0.0) + probability
            outcome_labels.setdefault(sampled, None)
        distributions[vector] = distribution
    return DiscreteModel(
        vectors=vectors,
        outcomes=tuple(outcome_labels),
        probabilities=distributions,
    )


def binary_known_seed_model(
    probabilities: Sequence[float],
    vectors: Sequence[Sequence[int]] | None = None,
) -> DiscreteModel:
    """Weighted Poisson sampling of binary data with *known* seeds.

    Per entry the outcome distinguishes three states: sampled (value is 1),
    not sampled with a low seed (``u_i <= p_i``, certifying the value is 0),
    and not sampled with a high seed (no information).  This is the model in
    which Section 5.1 constructs optimal OR estimators.
    """
    probabilities = check_probability_vector(probabilities)
    r = len(probabilities)
    if vectors is None:
        vectors = list(product((0, 1), repeat=r))
    vectors = tuple(tuple(int(v) for v in vector) for vector in vectors)
    outcome_labels: dict = {}
    distributions: dict = {}
    # Entry states: "1" sampled, "0" certified zero, "?" no information.
    for vector in vectors:
        distribution: dict = {}
        per_entry_states = []
        for i in range(r):
            p = probabilities[i]
            if vector[i] == 1:
                per_entry_states.append((("1", p), ("?", 1.0 - p)))
            else:
                per_entry_states.append((("0", p), ("?", 1.0 - p)))
        for combination in product(*per_entry_states):
            label = tuple(state for state, _ in combination)
            probability = 1.0
            for _, weight in combination:
                probability *= weight
            if probability <= 0.0:
                continue
            distribution[label] = distribution.get(label, 0.0) + probability
            outcome_labels.setdefault(label, None)
        distributions[vector] = distribution
    return DiscreteModel(
        vectors=vectors,
        outcomes=tuple(outcome_labels),
        probabilities=distributions,
    )
