"""Common interface for single-vector estimators.

Every concrete estimator in :mod:`repro.core` consumes a
:class:`repro.sampling.outcomes.VectorOutcome` and returns a nonnegative
estimate of its target function.  The interface also exposes the properties
the paper cares about (unbiasedness, nonnegativity, monotonicity, Pareto
optimality) as metadata so comparison harnesses can report them.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Iterable

import numpy as np

from repro.sampling.outcomes import VectorOutcome

__all__ = ["VectorEstimator"]


class VectorEstimator(ABC):
    """Base class for estimators of a function of a dispersed value vector."""

    #: name of the estimated function ("max", "or", ...)
    function_name: str = ""
    #: short identifier of the estimator variant ("HT", "L", "U", ...)
    variant: str = ""
    #: whether the estimator is unbiased for every data vector
    is_unbiased: bool = True
    #: whether the estimator is nonnegative on every outcome
    is_nonnegative: bool = True
    #: whether the estimator is monotone (nondecreasing with information)
    is_monotone: bool = False
    #: whether the estimator is Pareto optimal (no unbiased nonnegative
    #: estimator dominates it)
    is_pareto_optimal: bool = False

    @property
    @abstractmethod
    def r(self) -> int:
        """Number of entries of the vectors the estimator accepts."""

    @abstractmethod
    def estimate(self, outcome: VectorOutcome) -> float:
        """Return the estimate for one outcome."""

    def estimate_many(self, outcomes: Iterable[VectorOutcome]) -> np.ndarray:
        """Vector of estimates for an iterable of outcomes."""
        return np.array([self.estimate(outcome) for outcome in outcomes],
                        dtype=float)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"{type(self).__name__}(function={self.function_name!r}, "
            f"variant={self.variant!r}, r={self.r})"
        )
