"""Common interface for single-vector estimators.

Every concrete estimator in :mod:`repro.core` consumes a
:class:`repro.sampling.outcomes.VectorOutcome` and returns a nonnegative
estimate of its target function.  The interface also exposes the properties
the paper cares about (unbiasedness, nonnegativity, monotonicity, Pareto
optimality) as metadata so comparison harnesses can report them.

Batches of outcomes are estimated through :meth:`VectorEstimator.
estimate_batch`, which concrete estimators override with a vectorized
NumPy implementation; the scalar :meth:`VectorEstimator.estimate` remains
the reference the batch path is tested against.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Iterable

import numpy as np

from repro.batch.outcome_batch import OutcomeBatch
from repro.exceptions import InvalidOutcomeError
from repro.sampling.outcomes import VectorOutcome

__all__ = ["VectorEstimator"]


class VectorEstimator(ABC):
    """Base class for estimators of a function of a dispersed value vector."""

    #: name of the estimated function ("max", "or", ...)
    function_name: str = ""
    #: short identifier of the estimator variant ("HT", "L", "U", ...)
    variant: str = ""
    #: whether the estimator is unbiased for every data vector
    is_unbiased: bool = True
    #: whether the estimator is nonnegative on every outcome
    is_nonnegative: bool = True
    #: whether the estimator is monotone (nondecreasing with information)
    is_monotone: bool = False
    #: whether the estimator is Pareto optimal (no unbiased nonnegative
    #: estimator dominates it)
    is_pareto_optimal: bool = False

    @property
    @abstractmethod
    def r(self) -> int:
        """Number of entries of the vectors the estimator accepts."""

    @abstractmethod
    def estimate(self, outcome: VectorOutcome) -> float:
        """Return the estimate for one outcome."""

    def estimate_batch(self, batch: OutcomeBatch) -> np.ndarray:
        """Vector of estimates for a columnar batch of outcomes.

        The base implementation is the scalar reference loop; concrete
        estimators override it with a vectorized NumPy kernel.  Overrides
        must agree with the scalar loop to floating-point round-off and
        raise the same exceptions on invalid batches.
        """
        return np.fromiter(
            (self.estimate(outcome) for outcome in batch.iter_outcomes()),
            dtype=np.float64,
            count=len(batch),
        )

    @property
    def has_batch_path(self) -> bool:
        """Whether this estimator overrides :meth:`estimate_batch`."""
        return type(self).estimate_batch is not VectorEstimator.estimate_batch

    def estimate_many(self, outcomes: Iterable[VectorOutcome]) -> np.ndarray:
        """Vector of estimates for an iterable of outcomes.

        Routes through the columnar :meth:`estimate_batch` fast path when
        the estimator provides one and the outcomes are homogeneous (same
        ``r`` and seed availability); otherwise falls back to the scalar
        loop.  An empty iterable yields a shape-``(0,)`` float64 array.
        """
        outcomes = list(outcomes)
        if not outcomes:
            return np.zeros(0, dtype=np.float64)
        if self.has_batch_path:
            try:
                batch = OutcomeBatch.from_outcomes(outcomes)
            except InvalidOutcomeError:
                pass  # heterogeneous outcomes: the scalar loop handles them
            else:
                return self.estimate_batch(batch)
        return np.array([self.estimate(outcome) for outcome in outcomes],
                        dtype=np.float64)

    def _check_batch(self, batch: OutcomeBatch) -> None:
        """Shared r-compatibility check for batch overrides."""
        if batch.r != self.r:
            raise InvalidOutcomeError(
                f"outcome has {batch.r} entries, estimator expects {self.r}"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"{type(self).__name__}(function={self.function_name!r}, "
            f"variant={self.variant!r}, r={self.r})"
        )
