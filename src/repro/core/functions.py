"""Multi-instance function primitives f(v) (Section 2).

Each primitive maps a value vector ``v = (v_1, ..., v_r)`` — the values one
key assumes across ``r`` instances — to a nonnegative number.  Sum
aggregates (Section 7) sum a primitive over selected keys.

Each scalar primitive with a vectorized twin (mapping an ``(n, r)`` value
matrix to the ``(n,)`` vector of per-row function values) is registered in
:data:`BATCH_FUNCTIONS`; the batch estimation engine and the aggregate
layer look twins up there, so a primitive gains the columnar fast path in
one place.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

import numpy as np

from repro.exceptions import InvalidParameterError

__all__ = [
    "maximum",
    "minimum",
    "lth_largest",
    "value_range",
    "exp_range",
    "boolean_or",
    "boolean_xor",
    "row_maximum",
    "row_minimum",
    "row_range",
    "row_boolean_or",
    "row_boolean_xor",
    "FUNCTIONS",
    "BATCH_FUNCTIONS",
]


def maximum(values: Sequence[float]) -> float:
    """The maximum entry ``max(v)``."""
    _check_nonempty(values)
    return float(max(values))


def minimum(values: Sequence[float]) -> float:
    """The minimum entry ``min(v)``."""
    _check_nonempty(values)
    return float(min(values))


def lth_largest(values: Sequence[float], ell: int) -> float:
    """The ``ell``-th largest entry (``ell = 1`` is the maximum)."""
    _check_nonempty(values)
    if not 1 <= ell <= len(values):
        raise InvalidParameterError(
            f"ell must be in [1, {len(values)}], got {ell}"
        )
    return float(sorted(values, reverse=True)[ell - 1])


def value_range(values: Sequence[float]) -> float:
    """The range ``RG(v) = max(v) - min(v)``."""
    _check_nonempty(values)
    return float(max(values) - min(values))


def exp_range(values: Sequence[float], exponent: float = 1.0) -> float:
    """The exponentiated range ``RG^d(v) = (max(v) - min(v))^d``."""
    if exponent <= 0.0:
        raise InvalidParameterError(
            f"exponent must be positive, got {exponent}"
        )
    return float(value_range(values) ** exponent)


def boolean_or(values: Sequence[float]) -> float:
    """Boolean OR of the entries: 1 if any entry is nonzero, else 0."""
    _check_nonempty(values)
    _check_binary(values)
    return 1.0 if any(float(v) != 0.0 for v in values) else 0.0


def boolean_xor(values: Sequence[float]) -> float:
    """Boolean XOR (parity) of the entries."""
    _check_nonempty(values)
    _check_binary(values)
    return float(sum(1 for v in values if float(v) != 0.0) % 2)


def _check_nonempty(values: Sequence[float]) -> None:
    if len(values) == 0:
        raise InvalidParameterError("value vector must not be empty")


def _check_binary(values: Sequence[float]) -> None:
    for v in values:
        if float(v) not in (0.0, 1.0):
            raise InvalidParameterError(
                f"Boolean primitives require values in {{0, 1}}, got {v!r}"
            )


def _check_binary_matrix(values: np.ndarray) -> None:
    bad = (values != 0.0) & (values != 1.0)
    if np.any(bad):
        offender = float(values[bad][0])
        raise InvalidParameterError(
            f"Boolean primitives require values in {{0, 1}}, got {offender!r}"
        )


def row_maximum(values: np.ndarray) -> np.ndarray:
    """Vectorized twin of :func:`maximum`."""
    return values.max(axis=1)


def row_minimum(values: np.ndarray) -> np.ndarray:
    """Vectorized twin of :func:`minimum`."""
    return values.min(axis=1)


def row_range(values: np.ndarray) -> np.ndarray:
    """Vectorized twin of :func:`value_range`."""
    return values.max(axis=1) - values.min(axis=1)


def row_boolean_or(values: np.ndarray) -> np.ndarray:
    """Vectorized twin of :func:`boolean_or` (validates like the scalar)."""
    _check_binary_matrix(values)
    return (values != 0.0).any(axis=1).astype(np.float64)


def row_boolean_xor(values: np.ndarray) -> np.ndarray:
    """Vectorized twin of :func:`boolean_xor` (validates like the scalar)."""
    _check_binary_matrix(values)
    return ((values != 0.0).sum(axis=1) % 2).astype(np.float64)


#: Registry of named primitives used by the experiment harness and examples.
FUNCTIONS: dict[str, Callable[[Sequence[float]], float]] = {
    "max": maximum,
    "min": minimum,
    "range": value_range,
    "or": boolean_or,
    "xor": boolean_xor,
}

#: Scalar primitive -> vectorized twin; the single lookup point for the
#: batch engine (HT estimators) and the aggregate layer (exact totals).
BATCH_FUNCTIONS: dict[Callable, Callable[[np.ndarray], np.ndarray]] = {
    maximum: row_maximum,
    minimum: row_minimum,
    value_range: row_range,
    boolean_or: row_boolean_or,
    boolean_xor: row_boolean_xor,
}
