"""Multi-instance function primitives f(v) (Section 2).

Each primitive maps a value vector ``v = (v_1, ..., v_r)`` — the values one
key assumes across ``r`` instances — to a nonnegative number.  Sum
aggregates (Section 7) sum a primitive over selected keys.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

from repro.exceptions import InvalidParameterError

__all__ = [
    "maximum",
    "minimum",
    "lth_largest",
    "value_range",
    "exp_range",
    "boolean_or",
    "boolean_xor",
    "FUNCTIONS",
]


def maximum(values: Sequence[float]) -> float:
    """The maximum entry ``max(v)``."""
    _check_nonempty(values)
    return float(max(values))


def minimum(values: Sequence[float]) -> float:
    """The minimum entry ``min(v)``."""
    _check_nonempty(values)
    return float(min(values))


def lth_largest(values: Sequence[float], ell: int) -> float:
    """The ``ell``-th largest entry (``ell = 1`` is the maximum)."""
    _check_nonempty(values)
    if not 1 <= ell <= len(values):
        raise InvalidParameterError(
            f"ell must be in [1, {len(values)}], got {ell}"
        )
    return float(sorted(values, reverse=True)[ell - 1])


def value_range(values: Sequence[float]) -> float:
    """The range ``RG(v) = max(v) - min(v)``."""
    _check_nonempty(values)
    return float(max(values) - min(values))


def exp_range(values: Sequence[float], exponent: float = 1.0) -> float:
    """The exponentiated range ``RG^d(v) = (max(v) - min(v))^d``."""
    if exponent <= 0.0:
        raise InvalidParameterError(
            f"exponent must be positive, got {exponent}"
        )
    return float(value_range(values) ** exponent)


def boolean_or(values: Sequence[float]) -> float:
    """Boolean OR of the entries: 1 if any entry is nonzero, else 0."""
    _check_nonempty(values)
    _check_binary(values)
    return 1.0 if any(float(v) != 0.0 for v in values) else 0.0


def boolean_xor(values: Sequence[float]) -> float:
    """Boolean XOR (parity) of the entries."""
    _check_nonempty(values)
    _check_binary(values)
    return float(sum(1 for v in values if float(v) != 0.0) % 2)


def _check_nonempty(values: Sequence[float]) -> None:
    if len(values) == 0:
        raise InvalidParameterError("value vector must not be empty")


def _check_binary(values: Sequence[float]) -> None:
    for v in values:
        if float(v) not in (0.0, 1.0):
            raise InvalidParameterError(
                f"Boolean primitives require values in {{0, 1}}, got {v!r}"
            )


#: Registry of named primitives used by the experiment harness and examples.
FUNCTIONS: dict[str, Callable[[Sequence[float]], float]] = {
    "max": maximum,
    "min": minimum,
    "range": value_range,
    "or": boolean_or,
    "xor": boolean_xor,
}
