"""Maximum estimators for Poisson PPS sampling with known seeds (Section 5.2).

Entry ``i`` with value ``v_i`` is sampled iff ``v_i >= u_i * tau_star_i``
where ``u_i`` is a uniform seed known to the estimator.  An unsampled entry
therefore reveals the upper bound ``v_i < u_i * tau_star_i``, which is the
partial information exploited by ``max^(L)``.

:class:`MaxPpsHT`
    The optimal inverse-probability estimator of [Cohen-Kaplan-Sen 2009]:
    positive only on outcomes where the upper bounds of all unsampled
    entries are below the largest sampled value (so ``max(v)`` is known).

:class:`MaxPpsL`
    The order-based optimal estimator derived in the paper for ``r = 2``
    (Figure 3 and Appendix A), which dominates :class:`MaxPpsHT` — the
    variance ratio is at least ``(1 + rho) / rho`` with
    ``rho = max(v) / tau_star``.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

import numpy as np

from repro._validation import check_positive_vector
from repro.batch.kernels import pps_max_ht_kernel, pps_max_l_r2_kernel
from repro.batch.outcome_batch import OutcomeBatch
from repro.core.estimator_base import VectorEstimator
from repro.exceptions import InvalidOutcomeError, UnsupportedConfigurationError
from repro.sampling.outcomes import VectorOutcome

__all__ = ["MaxPpsHT", "MaxPpsL"]


class MaxPpsHT(VectorEstimator):
    """Inverse-probability max estimator for PPS samples with known seeds.

    The outcome is in ``S*`` when ``max_{i not in S} u_i tau_star_i <=
    max_{i in S} v_i``; the estimate is then
    ``M / prod_i min(1, M / tau_star_i)`` with ``M`` the largest sampled
    value, and zero otherwise.
    """

    function_name = "max"
    variant = "HT"
    is_monotone = True

    def __init__(self, tau_star: Sequence[float]) -> None:
        self.tau_star = check_positive_vector(tau_star, "tau_star")

    @property
    def r(self) -> int:
        return len(self.tau_star)

    def estimate(self, outcome: VectorOutcome) -> float:
        self._check(outcome)
        if outcome.is_empty:
            return 0.0
        top = outcome.max_sampled()
        if top <= 0.0:
            return 0.0
        for i in range(self.r):
            if i not in outcome.sampled:
                if outcome.seeds[i] * self.tau_star[i] > top:
                    return 0.0
        probability = math.prod(
            min(1.0, top / tau) for tau in self.tau_star
        )
        return top / probability

    def estimate_batch(self, batch: OutcomeBatch) -> np.ndarray:
        """Vectorized inverse-probability PPS max estimate."""
        self._check_batch_seeds(batch)
        return pps_max_ht_kernel(
            batch.values,
            batch.sampled,
            batch.seeds,
            np.asarray(self.tau_star),
        )

    def _check_batch_seeds(self, batch: OutcomeBatch) -> None:
        self._check_batch(batch)
        if batch.seeds is None:
            raise InvalidOutcomeError(
                "PPS max estimators require known seeds in the outcome"
            )

    def variance(self, values: Sequence[float]) -> float:
        """Exact variance for data ``values``."""
        values = [float(v) for v in values]
        top = max(values)
        if top <= 0.0:
            return 0.0
        probability = math.prod(
            min(1.0, top / tau) for tau in self.tau_star
        )
        # top * top (exactly rounded) rather than top ** 2: libm pow can be
        # one ulp off the true square, and variance_many squares with the
        # exact multiply.
        return top * top * (1.0 / probability - 1.0)

    def variance_many(self, values_matrix) -> np.ndarray:
        """Exact variances for a ``(n, r)`` matrix of data vectors.

        Vectorized twin of :meth:`variance`: the inclusion probability is
        accumulated threshold by threshold in the same order as the scalar
        ``math.prod``, so each row agrees with the scalar call bit for bit.
        """
        values_matrix = np.asarray(values_matrix, dtype=np.float64)
        if values_matrix.ndim != 2 or values_matrix.shape[1] != self.r:
            raise InvalidOutcomeError(
                f"values matrix must have shape (n, {self.r}), "
                f"got {values_matrix.shape}"
            )
        top = values_matrix.max(axis=1)
        positive = top > 0.0
        safe_top = np.where(positive, top, 1.0)
        probability = np.ones(len(values_matrix), dtype=np.float64)
        for tau in self.tau_star:
            probability *= np.minimum(1.0, safe_top / tau)
        return np.where(
            positive, safe_top * safe_top * (1.0 / probability - 1.0), 0.0
        )

    def _check(self, outcome: VectorOutcome) -> None:
        if outcome.r != self.r:
            raise InvalidOutcomeError(
                f"outcome has {outcome.r} entries, estimator expects {self.r}"
            )
        if outcome.seeds is None:
            raise InvalidOutcomeError(
                "PPS max estimators require known seeds in the outcome"
            )


class MaxPpsL(VectorEstimator):
    """The ``max^(L)`` estimator for two PPS samples with known seeds.

    The estimate is a function of the *determining vector* ``phi(S)``: the
    smallest (in the paper's order) data vector consistent with the outcome.
    For ``r = 2`` (Figure 3):

    * ``S = {}``      -> ``phi = (0, 0)``;
    * ``S = {0}``     -> ``phi = (v_1, min(u_2 tau_2, v_1))``;
    * ``S = {1}``     -> ``phi = (min(u_1 tau_1, v_2), v_2)``;
    * ``S = {0, 1}``  -> ``phi = (v_1, v_2)``.

    and the closed forms of the bottom table of Figure 3 (equations (25),
    (26), (29) and (30) of the paper) give the estimate as a function of the
    determining vector.
    """

    function_name = "max"
    variant = "L"
    is_monotone = True
    is_pareto_optimal = True

    def __init__(self, tau_star: Sequence[float]) -> None:
        self.tau_star = check_positive_vector(tau_star, "tau_star")
        if len(self.tau_star) != 2:
            raise UnsupportedConfigurationError(
                "the paper derives the PPS known-seed max^(L) for r = 2 only"
            )

    @property
    def r(self) -> int:
        return 2

    def determining_vector(self, outcome: VectorOutcome) -> tuple[float, float]:
        """The determining vector ``phi(S)`` of a known-seed PPS outcome."""
        self._check(outcome)
        tau1, tau2 = self.tau_star
        if outcome.is_empty:
            return (0.0, 0.0)
        if outcome.sampled == frozenset({0, 1}):
            return (outcome.values[0], outcome.values[1])
        if outcome.sampled == frozenset({0}):
            v1 = outcome.values[0]
            return (v1, min(outcome.seeds[1] * tau2, v1))
        v2 = outcome.values[1]
        return (min(outcome.seeds[0] * tau1, v2), v2)

    def estimate(self, outcome: VectorOutcome) -> float:
        phi = self.determining_vector(outcome)
        return self.estimate_from_determining(*phi)

    def estimate_batch(self, batch: OutcomeBatch) -> np.ndarray:
        """Vectorized Figure 3 closed forms over a batch of outcomes."""
        self._check_batch(batch)
        if batch.seeds is None:
            raise InvalidOutcomeError(
                "PPS max estimators require known seeds in the outcome"
            )
        return pps_max_l_r2_kernel(
            batch.values, batch.sampled, batch.seeds, *self.tau_star
        )

    def estimate_from_determining(self, phi1: float, phi2: float) -> float:
        """Estimate as a function of the determining vector (Figure 3)."""
        phi1, phi2 = float(phi1), float(phi2)
        if phi1 < 0.0 or phi2 < 0.0:
            raise InvalidOutcomeError("determining vector must be nonnegative")
        if phi1 == 0.0 and phi2 == 0.0:
            return 0.0
        if min(phi1, phi2) <= 0.0:
            # A determining vector of a nonempty outcome always has two
            # positive entries (zero values are never sampled and the seed
            # bound of an unsampled entry is positive).
            raise InvalidOutcomeError(
                "determining vector entries must be positive unless both are zero"
            )
        if phi1 >= phi2:
            return self._sorted_estimate(
                phi1, phi2, self.tau_star[0], self.tau_star[1]
            )
        return self._sorted_estimate(
            phi2, phi1, self.tau_star[1], self.tau_star[0]
        )

    @staticmethod
    def _sorted_estimate(a: float, b: float, tau_a: float, tau_b: float) -> float:
        """Figure 3 closed forms with ``a >= b``; ``tau_a``/``tau_b`` are the
        thresholds of the entries holding ``a`` and ``b``."""
        if a == b:
            # Equal entries: Eq. (25).
            q_a = min(1.0, a / tau_a)
            q_b = min(1.0, a / tau_b)
            return a / (q_a + (1.0 - q_a) * q_b)
        if b >= tau_b:
            # Eq. (26).
            return b + (a - b) / min(1.0, a / tau_a)
        if a >= tau_a:
            # Case ``v >= tau_1``: the estimate equals the larger entry.
            return a
        total = tau_a + tau_b
        if a <= tau_b:
            # Eq. (29): both entries below both thresholds.
            return (
                tau_a * tau_b / (total - a)
                + tau_a * tau_b * (tau_a - a) / (a * total)
                * math.log((total - b) * a / (b * (total - a)))
                + (a - b) * tau_a * tau_b * (tau_a - a)
                / (a * (total - b) * (total - a))
            )
        # Eq. (30): b <= tau_b <= a <= tau_a.  Note: the log argument printed
        # in the paper, ((tau_a + tau_b - b) tau_a) / (tau_b (tau_a + tau_b -
        # a)), is a typo — re-deriving the appendix integral (footnote 2 with
        # lower limit v - tau_2) gives ((tau_a + tau_b - b) tau_b) /
        # (b tau_a), which is the unique choice that keeps the estimator
        # continuous across the case boundaries and unbiased.
        return (
            tau_a + tau_b - tau_a * tau_b / a
            + tau_a * tau_b * (tau_a - a) / (a * total)
            * math.log((total - b) * tau_b / (b * tau_a))
            + tau_b * (tau_a - a) * (tau_b - b) / ((total - b) * a)
        )

    @staticmethod
    def _sorted_estimate_vector(
        a: float, b: np.ndarray, tau_a: float, tau_b: float
    ) -> np.ndarray:
        """Vectorised Figure 3 closed forms for a fixed larger entry ``a``
        and an array of smaller entries ``b`` (all ``0 < b <= a``)."""
        b = np.asarray(b, dtype=float)
        result = np.empty_like(b)
        total = tau_a + tau_b

        high = b >= tau_b                      # Eq. (26)
        result[high] = b[high] + (a - b[high]) / min(1.0, a / tau_a)
        low = ~high
        if not np.any(low):
            return result
        if a >= tau_a:                         # the larger entry is certain
            result[low] = a
            return result
        b_low = b[low]
        if a <= tau_b:                         # Eq. (29)
            values = (
                tau_a * tau_b / (total - a)
                + tau_a * tau_b * (tau_a - a) / (a * total)
                * np.log((total - b_low) * a / (b_low * (total - a)))
                + (a - b_low) * tau_a * tau_b * (tau_a - a)
                / (a * (total - b_low) * (total - a))
            )
        else:                                  # Eq. (30), corrected log term
            values = (
                tau_a + tau_b - tau_a * tau_b / a
                + tau_a * tau_b * (tau_a - a) / (a * total)
                * np.log((total - b_low) * tau_b / (b_low * tau_a))
                + tau_b * (tau_a - a) * (tau_b - b_low) / ((total - b_low) * a)
            )
        result[low] = values
        return result

    # ------------------------------------------------------------------
    # Exact moments via one-dimensional numerical integration.
    # ------------------------------------------------------------------
    def moments(
        self, values: Sequence[float], grid_size: int = 2001
    ) -> tuple[float, float]:
        """Exact mean and variance of the estimator for data ``values``.

        The expectation over outcomes decomposes into the four inclusion
        patterns; the patterns with exactly one sampled entry require an
        integral over the seed of the unsampled entry, evaluated with the
        trapezoidal rule on ``grid_size`` points.
        """
        v1, v2 = (float(values[0]), float(values[1]))
        if v1 < 0.0 or v2 < 0.0:
            raise InvalidOutcomeError("values must be nonnegative")
        tau1, tau2 = self.tau_star
        q1 = min(1.0, v1 / tau1)
        q2 = min(1.0, v2 / tau2)

        mean = 0.0
        second = 0.0

        if q1 > 0.0 and q2 > 0.0:
            est = self.estimate_from_determining(v1, v2)
            weight = q1 * q2
            mean += weight * est
            second += weight * est ** 2

        # Only entry 1 sampled: u2 uniform on (q2, 1].
        if q1 > 0.0 and q2 < 1.0:
            mean_piece, second_piece = self._one_sampled_moments(
                sampled_value=v1, tau_sampled=tau1, tau_unsampled=tau2,
                q_unsampled=q2, grid_size=grid_size,
            )
            weight = q1 * (1.0 - q2)
            mean += weight * mean_piece
            second += weight * second_piece

        # Only entry 2 sampled: u1 uniform on (q1, 1].
        if q2 > 0.0 and q1 < 1.0:
            mean_piece, second_piece = self._one_sampled_moments(
                sampled_value=v2, tau_sampled=tau2, tau_unsampled=tau1,
                q_unsampled=q1, grid_size=grid_size,
            )
            weight = q2 * (1.0 - q1)
            mean += weight * mean_piece
            second += weight * second_piece

        variance = second - mean ** 2
        return mean, max(variance, 0.0)

    def variance(self, values: Sequence[float], grid_size: int = 2001) -> float:
        """Exact variance of the estimator for data ``values``."""
        return self.moments(values, grid_size=grid_size)[1]

    def moments_many(
        self, values_matrix, grid_size: int = 2001
    ) -> tuple[np.ndarray, np.ndarray]:
        """Exact moments for a ``(n, 2)`` matrix of data vectors.

        The integration grid of :meth:`moments` depends on the data vector,
        so rows are evaluated one by one — but only once per *distinct*
        vector: duplicate rows (ubiquitous in integer-valued workloads such
        as flow counts) share the result.  Each row equals the scalar
        :meth:`moments` call bit for bit.
        """
        values_matrix = np.asarray(values_matrix, dtype=np.float64)
        if values_matrix.ndim != 2 or values_matrix.shape[1] != 2:
            raise InvalidOutcomeError(
                "values matrix must have shape (n, 2), "
                f"got {values_matrix.shape}"
            )
        unique_rows, inverse = np.unique(
            values_matrix, axis=0, return_inverse=True
        )
        means = np.empty(len(unique_rows))
        variances = np.empty(len(unique_rows))
        for index, row in enumerate(unique_rows):
            means[index], variances[index] = self.moments(
                (float(row[0]), float(row[1])), grid_size=grid_size
            )
        return means[inverse], variances[inverse]

    def variance_many(
        self, values_matrix, grid_size: int = 2001
    ) -> np.ndarray:
        """Exact variances for a ``(n, 2)`` matrix of data vectors."""
        return self.moments_many(values_matrix, grid_size=grid_size)[1]

    def _one_sampled_moments(
        self,
        sampled_value: float,
        tau_sampled: float,
        tau_unsampled: float,
        q_unsampled: float,
        grid_size: int,
    ) -> tuple[float, float]:
        """Conditional moments given that exactly one entry is sampled.

        Conditioned on the other entry not being sampled, its seed is
        uniform on ``(q_unsampled, 1]`` and the determining vector pairs the
        sampled value with ``min(seed * tau_unsampled, sampled_value)``.
        """
        # The estimate diverges only logarithmically as the seed approaches
        # zero.  A geometric grid near the lower end point followed by a
        # uniform grid captures the log-shaped integrand accurately while
        # avoiding the singular end point itself.
        lower = max(q_unsampled, 1e-12)
        knee = min(max(lower * 10.0, 0.02), 1.0)
        if knee > lower:
            log_part = np.geomspace(lower, knee, max(grid_size // 4, 64))
            linear_part = np.linspace(knee, 1.0, grid_size)
            seeds = np.unique(np.concatenate([log_part, linear_part]))
        else:
            seeds = np.linspace(lower, 1.0, grid_size)
        bounds = np.minimum(seeds * tau_unsampled, sampled_value)
        estimates = self._sorted_estimate_vector(
            sampled_value, bounds, tau_sampled, tau_unsampled
        )
        width = 1.0 - q_unsampled
        if width <= 0.0:  # pragma: no cover - guarded by caller
            return 0.0, 0.0
        mean = float(np.trapezoid(estimates, seeds) / width)
        second = float(np.trapezoid(estimates ** 2, seeds) / width)
        return mean, second

    def _check(self, outcome: VectorOutcome) -> None:
        if outcome.r != 2:
            raise InvalidOutcomeError(
                f"outcome has {outcome.r} entries, estimator expects 2"
            )
        if outcome.seeds is None:
            raise InvalidOutcomeError(
                "PPS max estimators require known seeds in the outcome"
            )
