"""Generic order-based estimator derivation — Algorithm 1 of the paper.

The derivation works over a *finite discrete model*: a finite set of data
vectors, a finite set of outcomes, and the conditional probabilities
``P[outcome | vector]``.  Given a total (or linearised partial) order on the
data vectors, Algorithm 1 processes vectors from smallest to largest and
assigns to the not-yet-processed outcomes consistent with the current vector
the unique value that keeps the estimator unbiased for that vector:

    fhat <- (f(v) - f0) / P[S' | v]

where ``f0`` is the contribution of already-processed outcomes.  The result,
when it exists, is the unique order-based estimator ``f^(≺)``, which is
unbiased and Pareto optimal (Lemma 3.1).

This engine is used both to *derive* estimators numerically for small
domains (cross-validating the closed forms of Sections 4 and 5) and to build
estimators for functions the paper leaves as exercises.
"""

from __future__ import annotations

from collections.abc import Callable, Hashable, Iterable, Mapping, Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import EstimatorDerivationError, InvalidParameterError

__all__ = ["DiscreteModel", "OrderBasedDeriver", "DerivedEstimator"]

Vector = tuple
Outcome = Hashable


@dataclass(frozen=True)
class DiscreteModel:
    """A finite sampling model.

    Attributes
    ----------
    vectors:
        The data domain ``V`` as a tuple of value vectors.
    outcomes:
        All possible outcomes (hashable labels).
    probabilities:
        ``probabilities[vector][outcome]`` is ``P[outcome | vector]``;
        omitted outcomes have probability zero.
    """

    vectors: tuple[Vector, ...]
    outcomes: tuple[Outcome, ...]
    probabilities: Mapping[Vector, Mapping[Outcome, float]] = field(repr=False)

    def __post_init__(self) -> None:
        for vector in self.vectors:
            distribution = self.probabilities.get(vector)
            if distribution is None:
                raise InvalidParameterError(
                    f"no outcome distribution for vector {vector!r}"
                )
            total = float(sum(distribution.values()))
            if not np.isclose(total, 1.0, atol=1e-9):
                raise InvalidParameterError(
                    f"outcome probabilities for {vector!r} sum to {total}, "
                    "expected 1"
                )

    def probability(self, vector: Vector, outcome: Outcome) -> float:
        """Return ``P[outcome | vector]`` (zero when not listed)."""
        return float(self.probabilities.get(vector, {}).get(outcome, 0.0))

    def consistent_vectors(self, outcome: Outcome) -> list[Vector]:
        """The set ``V*(outcome)`` of vectors that can produce ``outcome``."""
        return [
            vector
            for vector in self.vectors
            if self.probability(vector, outcome) > 0.0
        ]

    def consistent_outcomes(self, vector: Vector) -> list[Outcome]:
        """Outcomes with positive probability under ``vector``."""
        distribution = self.probabilities.get(vector, {})
        return [
            outcome
            for outcome in self.outcomes
            if distribution.get(outcome, 0.0) > 0.0
        ]

    @classmethod
    def from_scheme(
        cls,
        scheme,
        vectors: Iterable[Sequence[float]],
        outcome_key: Callable | None = None,
    ) -> "DiscreteModel":
        """Build a model by enumerating a scheme's outcomes on each vector.

        ``scheme`` must offer ``iter_outcomes(vector)`` yielding
        ``(VectorOutcome, probability)`` pairs (the weight-oblivious Poisson
        scheme does).  Outcomes are keyed by ``(sampled indices, sampled
        values)`` unless a custom ``outcome_key`` is given.
        """
        if outcome_key is None:
            def outcome_key(outcome):  # noqa: D401 - small local helper
                return (
                    tuple(sorted(outcome.sampled)),
                    tuple(outcome.values[i] for i in sorted(outcome.sampled)),
                )

        vectors = tuple(tuple(float(v) for v in vector) for vector in vectors)
        probabilities: dict[Vector, dict[Outcome, float]] = {}
        outcome_labels: dict[Outcome, None] = {}
        for vector in vectors:
            distribution: dict[Outcome, float] = {}
            for outcome, probability in scheme.iter_outcomes(vector):
                label = outcome_key(outcome)
                distribution[label] = distribution.get(label, 0.0) + probability
                outcome_labels.setdefault(label, None)
            probabilities[vector] = distribution
        return cls(
            vectors=vectors,
            outcomes=tuple(outcome_labels),
            probabilities=probabilities,
        )


@dataclass(frozen=True)
class DerivedEstimator:
    """Result of a derivation: a lookup table from outcomes to estimates."""

    estimates: Mapping[Outcome, float]
    model: DiscreteModel
    function: Callable[[Vector], float] = field(repr=False)

    def __call__(self, outcome: Outcome) -> float:
        return self.estimate(outcome)

    def estimate(self, outcome: Outcome) -> float:
        """Estimate for a (hashable) outcome label."""
        if outcome not in self.estimates:
            raise InvalidParameterError(
                f"outcome {outcome!r} was not part of the derivation model"
            )
        return float(self.estimates[outcome])

    def expectation(self, vector: Vector) -> float:
        """Expected estimate under data ``vector`` (should equal f(vector))."""
        return float(
            sum(
                self.model.probability(vector, outcome) * estimate
                for outcome, estimate in self.estimates.items()
            )
        )

    def variance(self, vector: Vector) -> float:
        """Exact variance of the estimator under data ``vector``."""
        mean = self.expectation(vector)
        second_moment = float(
            sum(
                self.model.probability(vector, outcome) * estimate ** 2
                for outcome, estimate in self.estimates.items()
            )
        )
        return second_moment - mean ** 2

    def is_nonnegative(self, tolerance: float = 1e-9) -> bool:
        """Whether every outcome estimate is (numerically) nonnegative."""
        return all(value >= -tolerance for value in self.estimates.values())


class OrderBasedDeriver:
    """Derive the order-based estimator ``f^(≺)`` on a discrete model.

    Parameters
    ----------
    model:
        The finite sampling model.
    function:
        The estimated function, called on data vectors.
    order_key:
        Key function defining the order ``≺`` on data vectors (smaller keys
        first).  Ties are processed in an arbitrary but deterministic order;
        per Section 3 the result does not depend on the linearisation when
        tied vectors are independent.
    """

    def __init__(
        self,
        model: DiscreteModel,
        function: Callable[[Vector], float],
        order_key: Callable[[Vector], object],
    ) -> None:
        self.model = model
        self.function = function
        self.order_key = order_key

    def derive(self, atol: float = 1e-9) -> DerivedEstimator:
        """Run Algorithm 1 and return the derived estimator.

        Raises
        ------
        EstimatorDerivationError
            If for some vector the unprocessed outcomes have zero probability
            while the processed contribution does not already match ``f``.
        """
        estimates: dict[Outcome, float] = {}
        processed: set[Outcome] = set()
        ordered_vectors = sorted(
            self.model.vectors, key=lambda v: (self.order_key(v), v)
        )
        for vector in ordered_vectors:
            f_value = float(self.function(vector))
            consistent = self.model.consistent_outcomes(vector)
            unprocessed = [o for o in consistent if o not in processed]
            contribution = sum(
                self.model.probability(vector, outcome) * estimates[outcome]
                for outcome in consistent
                if outcome in processed
            )
            unprocessed_probability = sum(
                self.model.probability(vector, outcome)
                for outcome in unprocessed
            )
            if unprocessed_probability <= atol:
                if abs(f_value - contribution) > 1e-7:
                    raise EstimatorDerivationError(
                        "no unbiased order-based estimator exists: vector "
                        f"{vector!r} has no unprocessed outcomes but its "
                        f"processed contribution {contribution} differs from "
                        f"f(v) = {f_value}"
                    )
                value = 0.0
            else:
                value = (f_value - contribution) / unprocessed_probability
            for outcome in unprocessed:
                estimates[outcome] = value
                processed.add(outcome)
        # Outcomes never consistent with any vector keep a zero estimate.
        for outcome in self.model.outcomes:
            estimates.setdefault(outcome, 0.0)
        return DerivedEstimator(
            estimates=estimates, model=self.model, function=self.function
        )
