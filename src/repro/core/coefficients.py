"""Coefficients of the uniform-probability ``max^(L)`` estimator.

Theorem 4.1 of the paper shows that under weight-oblivious Poisson sampling
the ``max^(L)`` estimate is a linear combination of the sorted entries of the
determining vector, with coefficients that are rational expressions of the
inclusion probabilities.  For a *uniform* inclusion probability ``p`` the
prefix sums ``A_i`` of the coefficients obey the triangular recursion of
Theorem 4.2 (Algorithm 3 in the paper), which lets the whole coefficient
vector be computed in ``O(r^2)`` time:

.. math::

    A_r = \\frac{1}{1 - (1-p)^r}

    A_{r-k-1} = \\frac{A_{r-k} + \\sum_{\\ell=1}^{k} \\binom{k}{\\ell}
        \\left(\\frac{1-p}{p}\\right)^{\\ell}
        \\bigl(A_{r-k+\\ell} - (1 - (1-p)^{r-k-1}) A_{r-k+\\ell-1}\\bigr)}
        {1 - (1-p)^{r-k-1}}

with ``alpha_1 = A_1`` and ``alpha_h = A_h - A_{h-1}``.

The recursion is implemented once, vectorized over a whole *vector* of
probabilities (:func:`uniform_prefix_sums_grid`) — the ``ell`` correction
sum uses precomputed binomial rows instead of a Python loop — and the
scalar entry points delegate to it through a ``functools.lru_cache`` keyed
on ``(r, p)``: figure sweeps used to recompute the same ``O(r^2)`` table
at every grid point.
"""

from __future__ import annotations

import math
from functools import lru_cache

import numpy as np

from repro._validation import check_probability
from repro.exceptions import InvalidParameterError

__all__ = [
    "uniform_prefix_sums",
    "uniform_prefix_sums_grid",
    "uniform_max_l_coefficients",
    "uniform_max_l_coefficients_grid",
    "max_l_r2_coefficients",
]


@lru_cache(maxsize=None)
def _binomial_row(k: int) -> np.ndarray:
    """``[C(k, 1), ..., C(k, k)]`` as a float64 row (cached per ``k``)."""
    return np.array([math.comb(k, ell) for ell in range(1, k + 1)],
                    dtype=np.float64)


def uniform_prefix_sums_grid(r: int, probabilities) -> np.ndarray:
    """Prefix-sum tables ``A_1, ..., A_r`` for a vector of probabilities.

    Parameters
    ----------
    r:
        Number of instances (entries of the data vector), ``r >= 1``.
    probabilities:
        Array of uniform inclusion probabilities, each in ``(0, 1]``.

    Returns
    -------
    numpy.ndarray
        ``(len(probabilities), r)`` array whose row ``g`` is the prefix-sum
        vector of ``probabilities[g]``.

    The recursion runs once over ``k`` with all grid points advancing in
    lock step; each element sees exactly the scalar sequence of operations,
    so rows agree with the scalar path bit for bit.
    """
    if r < 1:
        raise InvalidParameterError(f"r must be >= 1, got {r}")
    p = np.asarray(probabilities, dtype=np.float64)
    if p.ndim != 1:
        raise InvalidParameterError(
            f"probabilities must be a 1-D vector, got shape {p.shape}"
        )
    valid = (p > 0.0) & (p <= 1.0)  # NaN-safe: NaN compares False
    if not valid.all():
        offender = float(p[~valid][0])
        raise InvalidParameterError(
            f"probability must be in (0, 1], got {offender}"
        )
    q = 1.0 - p
    prefix = np.zeros((p.size, r + 1))  # 1-based columns: prefix[:, i] = A_i
    prefix[:, r] = 1.0 / (1.0 - q ** r)
    if r > 1:
        ratio = q / p
    for k in range(0, r - 1):
        denominator = 1.0 - q ** (r - k - 1)
        if k == 0:
            correction = 0.0
        else:
            ells = np.arange(1, k + 1)
            diffs = (
                prefix[:, r - k + ells]
                - denominator[:, None] * prefix[:, r - k + ells - 1]
            )
            correction = (
                _binomial_row(k) * ratio[:, None] ** ells * diffs
            ).sum(axis=1)
        prefix[:, r - k - 1] = (prefix[:, r - k] + correction) / denominator
    return prefix[:, 1:]


def uniform_max_l_coefficients_grid(r: int, probabilities) -> np.ndarray:
    """Coefficient tables ``alpha_1, ..., alpha_r`` per probability.

    Returns a ``(len(probabilities), r)`` array; row ``g`` holds the
    coefficients of ``probabilities[g]`` (``alpha_1 = A_1``,
    ``alpha_h = A_h - A_{h-1}``).
    """
    prefix = uniform_prefix_sums_grid(r, probabilities)
    alphas = np.empty_like(prefix)
    alphas[:, 0] = prefix[:, 0]
    alphas[:, 1:] = np.diff(prefix, axis=1)
    return alphas


@lru_cache(maxsize=4096)
def _uniform_prefix_sums_cached(r: int, p: float) -> tuple[float, ...]:
    return tuple(uniform_prefix_sums_grid(r, np.array([p]))[0].tolist())


def uniform_prefix_sums(r: int, p: float) -> np.ndarray:
    """Prefix sums ``A_1, ..., A_r`` of the ``max^(L)`` coefficients.

    Parameters
    ----------
    r:
        Number of instances (entries of the data vector), ``r >= 1``.
    p:
        Uniform inclusion probability in ``(0, 1]``.

    Returns
    -------
    numpy.ndarray
        Array ``A`` of length ``r`` with ``A[i-1] = A_i`` (a fresh copy;
        the underlying table is memoised on ``(r, p)``).
    """
    if r < 1:
        raise InvalidParameterError(f"r must be >= 1, got {r}")
    p = check_probability(p)
    return np.array(_uniform_prefix_sums_cached(int(r), float(p)))


@lru_cache(maxsize=4096)
def _uniform_max_l_coefficients_cached(r: int, p: float) -> tuple[float, ...]:
    prefix = np.array(_uniform_prefix_sums_cached(r, p))
    alphas = np.empty(r)
    alphas[0] = prefix[0]
    alphas[1:] = np.diff(prefix)
    return tuple(alphas.tolist())


def uniform_max_l_coefficients(r: int, p: float) -> np.ndarray:
    """Coefficients ``alpha_1, ..., alpha_r`` of the uniform-p ``max^(L)``.

    The estimate for an outcome with sorted determining vector
    ``u_1 >= ... >= u_r`` is ``sum_i alpha_i u_i``.  Memoised on ``(r, p)``
    and returned as a fresh copy.
    """
    if r < 1:
        raise InvalidParameterError(f"r must be >= 1, got {r}")
    p = check_probability(p)
    return np.array(_uniform_max_l_coefficients_cached(int(r), float(p)))


def max_l_r2_coefficients(p1: float, p2: float) -> tuple[float, float]:
    """Coefficients of ``max^(L)`` for ``r = 2`` with heterogeneous ``p``.

    Eq. (12) of the paper: with a determining vector ``(v_1, v_2)`` sorted so
    that ``v_1 >= v_2`` (and ``p`` permuted accordingly), the estimate is
    ``alpha_1 v_1 + alpha_2 v_2`` with

    .. math::

        \\alpha_1 = \\frac{1}{p_1 (p_1 + p_2 - p_1 p_2)}, \\qquad
        \\alpha_2 = -\\frac{1 - p_1}{p_1 (p_1 + p_2 - p_1 p_2)}.
    """
    p1 = check_probability(p1, "p1")
    p2 = check_probability(p2, "p2")
    union = p1 + p2 - p1 * p2
    alpha_1 = 1.0 / (p1 * union)
    alpha_2 = -(1.0 - p1) / (p1 * union)
    return alpha_1, alpha_2
