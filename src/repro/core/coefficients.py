"""Coefficients of the uniform-probability ``max^(L)`` estimator.

Theorem 4.1 of the paper shows that under weight-oblivious Poisson sampling
the ``max^(L)`` estimate is a linear combination of the sorted entries of the
determining vector, with coefficients that are rational expressions of the
inclusion probabilities.  For a *uniform* inclusion probability ``p`` the
prefix sums ``A_i`` of the coefficients obey the triangular recursion of
Theorem 4.2 (Algorithm 3 in the paper), which lets the whole coefficient
vector be computed in ``O(r^2)`` time:

.. math::

    A_r = \\frac{1}{1 - (1-p)^r}

    A_{r-k-1} = \\frac{A_{r-k} + \\sum_{\\ell=1}^{k} \\binom{k}{\\ell}
        \\left(\\frac{1-p}{p}\\right)^{\\ell}
        \\bigl(A_{r-k+\\ell} - (1 - (1-p)^{r-k-1}) A_{r-k+\\ell-1}\\bigr)}
        {1 - (1-p)^{r-k-1}}

with ``alpha_1 = A_1`` and ``alpha_h = A_h - A_{h-1}``.
"""

from __future__ import annotations

import math

import numpy as np

from repro._validation import check_probability
from repro.exceptions import InvalidParameterError

__all__ = [
    "uniform_prefix_sums",
    "uniform_max_l_coefficients",
    "max_l_r2_coefficients",
]


def uniform_prefix_sums(r: int, p: float) -> np.ndarray:
    """Prefix sums ``A_1, ..., A_r`` of the ``max^(L)`` coefficients.

    Parameters
    ----------
    r:
        Number of instances (entries of the data vector), ``r >= 1``.
    p:
        Uniform inclusion probability in ``(0, 1]``.

    Returns
    -------
    numpy.ndarray
        Array ``A`` of length ``r`` with ``A[i-1] = A_i``.
    """
    if r < 1:
        raise InvalidParameterError(f"r must be >= 1, got {r}")
    p = check_probability(p)
    q = 1.0 - p
    prefix = np.zeros(r + 1)  # 1-based indexing: prefix[i] = A_i
    prefix[r] = 1.0 / (1.0 - q ** r)
    for k in range(0, r - 1):
        correction = 0.0
        for ell in range(1, k + 1):
            correction += (
                math.comb(k, ell)
                * (q / p) ** ell
                * (
                    prefix[r - k + ell]
                    - (1.0 - q ** (r - k - 1)) * prefix[r - k + ell - 1]
                )
            )
        prefix[r - k - 1] = (prefix[r - k] + correction) / (
            1.0 - q ** (r - k - 1)
        )
    return prefix[1:]


def uniform_max_l_coefficients(r: int, p: float) -> np.ndarray:
    """Coefficients ``alpha_1, ..., alpha_r`` of the uniform-p ``max^(L)``.

    The estimate for an outcome with sorted determining vector
    ``u_1 >= ... >= u_r`` is ``sum_i alpha_i u_i``.
    """
    prefix = uniform_prefix_sums(r, p)
    alphas = np.empty(r)
    alphas[0] = prefix[0]
    alphas[1:] = np.diff(prefix)
    return alphas


def max_l_r2_coefficients(p1: float, p2: float) -> tuple[float, float]:
    """Coefficients of ``max^(L)`` for ``r = 2`` with heterogeneous ``p``.

    Eq. (12) of the paper: with a determining vector ``(v_1, v_2)`` sorted so
    that ``v_1 >= v_2`` (and ``p`` permuted accordingly), the estimate is
    ``alpha_1 v_1 + alpha_2 v_2`` with

    .. math::

        \\alpha_1 = \\frac{1}{p_1 (p_1 + p_2 - p_1 p_2)}, \\qquad
        \\alpha_2 = -\\frac{1 - p_1}{p_1 (p_1 + p_2 - p_1 p_2)}.
    """
    p1 = check_probability(p1, "p1")
    p2 = check_probability(p2, "p2")
    union = p1 + p2 - p1 * p2
    alpha_1 = 1.0 / (p1 * union)
    alpha_2 = -(1.0 - p1) / (p1 * union)
    return alpha_1, alpha_2
