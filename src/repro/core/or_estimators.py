"""Boolean OR estimators (Sections 4.3 and 5.1).

``OR(v)`` is 1 when any entry is nonzero.  Its sum aggregate over keys is the
distinct-element count (size of the union of the instances viewed as sets),
the application developed in Section 8.1.

Two sampling models are covered:

* **weight-oblivious Poisson** sampling (Section 4.3): entry ``i`` is
  sampled with probability ``p_i`` regardless of its value — estimators
  :class:`OrObliviousHT`, :class:`OrObliviousL`, :class:`OrObliviousU`.
* **weighted Poisson with known seeds** (Section 5.1): only ``1``-valued
  entries can be sampled (with probability ``p_i``), but the seed ``u_i`` of
  each entry is known, so ``i not in S`` together with ``u_i <= p_i``
  certifies ``v_i = 0``.  The paper shows this model is outcome-equivalent
  to the weight-oblivious one; estimators
  :class:`OrKnownSeedsHT`, :class:`OrKnownSeedsL`, :class:`OrKnownSeedsU`
  apply the mapping and delegate.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro._validation import check_probability_vector
from repro.batch.kernels import check_binary_columns, known_seed_or_mapping
from repro.batch.outcome_batch import OutcomeBatch
from repro.core.estimator_base import VectorEstimator
from repro.core.functions import boolean_or
from repro.core.ht import HorvitzThompsonOblivious
from repro.core.max_oblivious import MaxObliviousL, MaxObliviousU
from repro.exceptions import InvalidOutcomeError
from repro.sampling.outcomes import VectorOutcome

__all__ = [
    "OrObliviousHT",
    "OrObliviousL",
    "OrObliviousU",
    "OrKnownSeedsHT",
    "OrKnownSeedsL",
    "OrKnownSeedsU",
    "map_known_seed_outcome_to_oblivious",
]


class OrObliviousHT(HorvitzThompsonOblivious):
    """HT estimator of Boolean OR under weight-oblivious Poisson sampling.

    The vectorized batch path picks up ``boolean_or``'s registered twin
    from :data:`~repro.core.functions.BATCH_FUNCTIONS` automatically.
    """

    function_name = "or"

    def __init__(self, probabilities: Sequence[float]) -> None:
        super().__init__(
            probabilities, function=boolean_or, function_name="or"
        )


class OrObliviousL(VectorEstimator):
    """``OR^(L)``: the dense-first optimal OR estimator (Section 4.3).

    Obtained by specialising ``max^(L)`` to the Boolean domain; optimal also
    on that restricted domain.
    """

    function_name = "or"
    variant = "L"
    is_monotone = True
    is_pareto_optimal = True

    def __init__(self, probabilities: Sequence[float]) -> None:
        self.probabilities = check_probability_vector(probabilities)
        self._max_l = MaxObliviousL(probabilities)

    @property
    def r(self) -> int:
        return len(self.probabilities)

    def estimate(self, outcome: VectorOutcome) -> float:
        _check_binary_outcome(outcome)
        return self._max_l.estimate(outcome)

    def estimate_batch(self, batch: OutcomeBatch) -> np.ndarray:
        """Vectorized ``OR^(L)``: binary check, then the ``max^(L)`` kernel."""
        check_binary_columns(batch.values, batch.sampled)
        return self._max_l.estimate_batch(batch)


class OrObliviousU(VectorEstimator):
    """``OR^(U)``: the sparse-first optimal OR estimator (Section 4.3),
    ``r = 2`` (specialisation of ``max^(U)``)."""

    function_name = "or"
    variant = "U"
    is_pareto_optimal = True

    def __init__(self, probabilities: Sequence[float]) -> None:
        self.probabilities = check_probability_vector(probabilities)
        self._max_u = MaxObliviousU(probabilities)

    @property
    def r(self) -> int:
        return 2

    def estimate(self, outcome: VectorOutcome) -> float:
        _check_binary_outcome(outcome)
        return self._max_u.estimate(outcome)

    def estimate_batch(self, batch: OutcomeBatch) -> np.ndarray:
        """Vectorized ``OR^(U)``: binary check, then the ``max^(U)`` kernel."""
        check_binary_columns(batch.values, batch.sampled)
        return self._max_u.estimate_batch(batch)


def map_known_seed_outcome_to_oblivious(
    outcome: VectorOutcome, probabilities: Sequence[float]
) -> VectorOutcome:
    """Map a known-seed weighted outcome over binary data to the equivalent
    weight-oblivious outcome (Section 5).

    The mapping (per entry ``i`` with sampling probability ``p_i`` for a
    ``1`` value):

    * ``i in S``                          -> sampled with value 1;
    * ``i not in S`` and ``u_i <= p_i``   -> sampled with value 0
      (the known seed certifies the value is 0);
    * ``i not in S`` and ``u_i > p_i``    -> not sampled.
    """
    if outcome.seeds is None:
        raise InvalidOutcomeError(
            "known-seed OR estimators require outcomes that carry seeds"
        )
    sampled: set[int] = set()
    values: dict[int, float] = {}
    for i in range(outcome.r):
        if i in outcome.sampled:
            sampled.add(i)
            values[i] = 1.0
        elif outcome.seeds[i] <= probabilities[i]:
            sampled.add(i)
            values[i] = 0.0
    return VectorOutcome(
        r=outcome.r, sampled=frozenset(sampled), values=values
    )


class _KnownSeedsOrBase(VectorEstimator):
    """Shared plumbing of the known-seed OR estimators."""

    function_name = "or"

    #: class of the weight-oblivious estimator to delegate to
    _oblivious_class: type[VectorEstimator] = OrObliviousHT

    def __init__(self, probabilities: Sequence[float]) -> None:
        self.probabilities = check_probability_vector(probabilities)
        self._oblivious = self._oblivious_class(probabilities)

    @property
    def r(self) -> int:
        return len(self.probabilities)

    def estimate(self, outcome: VectorOutcome) -> float:
        _check_binary_outcome(outcome, allow_missing_values=True)
        mapped = map_known_seed_outcome_to_oblivious(
            outcome, self.probabilities
        )
        return self._oblivious.estimate(mapped)

    def estimate_batch(self, batch: OutcomeBatch) -> np.ndarray:
        """Vectorized known-seed OR: apply the Section 5 outcome mapping
        column-wise, then delegate to the weight-oblivious batch kernel."""
        check_binary_columns(batch.values, batch.sampled)
        if batch.seeds is None:
            raise InvalidOutcomeError(
                "known-seed OR estimators require outcomes that carry seeds"
            )
        self._check_batch(batch)
        mapped_values, mapped_sampled = known_seed_or_mapping(
            batch.sampled, batch.seeds, np.asarray(self.probabilities)
        )
        mapped = OutcomeBatch(values=mapped_values, sampled=mapped_sampled)
        return self._oblivious.estimate_batch(mapped)


class OrKnownSeedsHT(_KnownSeedsOrBase):
    """``OR^(HT)`` for weighted sampling with known seeds (Section 5.1)."""

    variant = "HT"
    is_monotone = True
    _oblivious_class = OrObliviousHT


class OrKnownSeedsL(_KnownSeedsOrBase):
    """``OR^(L)`` for weighted sampling with known seeds (Section 5.1)."""

    variant = "L"
    is_monotone = True
    is_pareto_optimal = True
    _oblivious_class = OrObliviousL


class OrKnownSeedsU(_KnownSeedsOrBase):
    """``OR^(U)`` for weighted sampling with known seeds (Section 5.1)."""

    variant = "U"
    is_pareto_optimal = True
    _oblivious_class = OrObliviousU


def _check_binary_outcome(
    outcome: VectorOutcome, allow_missing_values: bool = False
) -> None:
    for value in outcome.values.values():
        if float(value) not in (0.0, 1.0):
            raise InvalidOutcomeError(
                "OR estimators require binary values; got "
                f"{value!r} in the outcome"
            )
    if allow_missing_values:
        return
