"""Core estimator framework and the paper's closed-form optimal estimators.

Modules
-------
``functions``
    Single-key multi-instance primitives: max, min, ℓ-th largest, range,
    exponentiated range, OR, XOR.
``estimator_base``
    The estimator interface shared by all concrete estimators.
``ht``
    Horvitz-Thompson / inverse-probability estimators (Section 2.2).
``order_based``
    The generic Algorithm 1 derivation engine for finite discrete models.
``partition_based``
    The generic Algorithm 2 derivation engine (ordered partition with
    nonnegativity constraints and per-batch local optimality).
``coefficients``
    Theorem 4.2 coefficient recursion for the uniform-probability
    ``max^(L)`` estimator (Algorithm 3 of the paper).
``max_oblivious``
    ``max^(HT)``, ``max^(L)`` and ``max^(U)`` under weight-oblivious Poisson
    sampling (Section 4).
``or_estimators``
    Boolean OR estimators, weight-oblivious and weighted with known seeds
    (Sections 4.3 and 5.1).
``max_weighted``
    ``max^(HT)`` and ``max^(L)`` under Poisson PPS sampling with known seeds
    (Section 5.2, Figure 3 and Appendix A).
``feasibility``
    LP feasibility checker used to reproduce the Section 6 impossibility
    results and the Lemma 2.1 necessary conditions.
``variance``
    Closed-form and exact-enumeration variance utilities.
"""

from repro.core.derived import (
    DerivedVectorEstimator,
    derive_for_oblivious_scheme,
)
from repro.core.estimator_base import VectorEstimator
from repro.core.functions import (
    FUNCTIONS,
    boolean_or,
    boolean_xor,
    exp_range,
    lth_largest,
    maximum,
    minimum,
    value_range,
)
from repro.core.ht import HorvitzThompsonOblivious, ht_variance
from repro.core.order_based import DiscreteModel, OrderBasedDeriver
from repro.core.partition_based import PartitionBasedDeriver

__all__ = [
    "DerivedVectorEstimator",
    "derive_for_oblivious_scheme",
    "VectorEstimator",
    "FUNCTIONS",
    "boolean_or",
    "boolean_xor",
    "exp_range",
    "lth_largest",
    "maximum",
    "minimum",
    "value_range",
    "HorvitzThompsonOblivious",
    "ht_variance",
    "DiscreteModel",
    "OrderBasedDeriver",
    "PartitionBasedDeriver",
]
