"""Generic ordered-partition estimator derivation — Algorithm 2 of the paper.

Algorithm 2 relaxes the strict order of Algorithm 1 to an ordered partition
``U_0, U_1, ...`` of the data domain.  Each batch is processed at once: the
estimates of the outcomes first consistent with the batch are chosen to be
*locally optimal* — minimising variance for the batch's vectors subject to

* unbiasedness for every vector in the batch (Eq. (8)),
* nonnegativity budgets for every vector in later batches (Eq. (9)), i.e.
  the expectation already committed must not exceed ``f(v')``,
* nonnegativity of the estimate values themselves.

Using a *symmetric* objective (the sum of the batch variances) yields the
symmetric estimators of the paper (e.g. ``max^(U)`` of Section 4.2) whenever
the model and the batch are symmetric.

The quadratic program is solved with SciPy's SLSQP, which is ample for the
small discrete models used in derivations and tests.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np
from scipy import optimize

from repro.core.order_based import DerivedEstimator, DiscreteModel, Outcome, Vector
from repro.exceptions import EstimatorDerivationError

__all__ = ["PartitionBasedDeriver"]


class PartitionBasedDeriver:
    """Derive the ordered-partition estimator ``f^(U)`` on a discrete model.

    Parameters
    ----------
    model:
        Finite sampling model.
    function:
        The estimated function, called on data vectors.
    batch_key:
        Key function defining the ordered partition: vectors with equal key
        belong to the same batch, batches are processed in increasing key
        order.  For the paper's ``max^(U)`` the key is the number of
        positive entries.
    """

    def __init__(
        self,
        model: DiscreteModel,
        function: Callable[[Vector], float],
        batch_key: Callable[[Vector], object],
    ) -> None:
        self.model = model
        self.function = function
        self.batch_key = batch_key

    def _batches(self) -> list[list[Vector]]:
        groups: dict[object, list[Vector]] = {}
        for vector in self.model.vectors:
            groups.setdefault(self.batch_key(vector), []).append(vector)
        return [groups[key] for key in sorted(groups)]

    def derive(self, atol: float = 1e-9) -> DerivedEstimator:
        """Run Algorithm 2 and return the derived estimator."""
        estimates: dict[Outcome, float] = {}
        processed: set[Outcome] = set()
        batches = self._batches()
        for index, batch in enumerate(batches):
            later_vectors = [v for later in batches[index + 1:] for v in later]
            self._process_batch(batch, later_vectors, estimates, processed,
                                atol)
        for outcome in self.model.outcomes:
            estimates.setdefault(outcome, 0.0)
        return DerivedEstimator(
            estimates=estimates, model=self.model, function=self.function
        )

    def _process_batch(
        self,
        batch: list[Vector],
        later_vectors: list[Vector],
        estimates: dict[Outcome, float],
        processed: set[Outcome],
        atol: float,
    ) -> None:
        new_outcomes: list[Outcome] = []
        seen: set[Outcome] = set()
        for vector in batch:
            for outcome in self.model.consistent_outcomes(vector):
                if outcome not in processed and outcome not in seen:
                    new_outcomes.append(outcome)
                    seen.add(outcome)
        if not new_outcomes:
            # Nothing new to set; unbiasedness must already hold.
            for vector in batch:
                contribution = self._processed_contribution(vector, estimates)
                if abs(contribution - float(self.function(vector))) > 1e-7:
                    raise EstimatorDerivationError(
                        f"batch containing {vector!r} has no free outcomes "
                        "but is not yet unbiased"
                    )
            return

        n = len(new_outcomes)
        outcome_index = {outcome: i for i, outcome in enumerate(new_outcomes)}

        # Quadratic objective: sum over batch vectors of E[estimate^2]
        # restricted to the free outcomes (the rest is fixed).
        weights = np.zeros(n)
        for vector in batch:
            for outcome in self.model.consistent_outcomes(vector):
                i = outcome_index.get(outcome)
                if i is not None:
                    weights[i] += self.model.probability(vector, outcome)

        equality_rows = []
        equality_rhs = []
        for vector in batch:
            row = np.zeros(n)
            for outcome in self.model.consistent_outcomes(vector):
                i = outcome_index.get(outcome)
                if i is not None:
                    row[i] = self.model.probability(vector, outcome)
            target = float(self.function(vector)) - self._processed_contribution(
                vector, estimates
            )
            if np.all(np.abs(row) <= atol):
                if abs(target) > 1e-7:
                    raise EstimatorDerivationError(
                        f"vector {vector!r} has zero probability of a free "
                        f"outcome but residual expectation {target}"
                    )
                continue
            equality_rows.append(row)
            equality_rhs.append(target)

        inequality_rows = []
        inequality_rhs = []
        for vector in later_vectors:
            row = np.zeros(n)
            for outcome in self.model.consistent_outcomes(vector):
                i = outcome_index.get(outcome)
                if i is not None:
                    row[i] = self.model.probability(vector, outcome)
            if np.all(row == 0.0):
                continue
            budget = float(self.function(vector)) - self._processed_contribution(
                vector, estimates
            )
            inequality_rows.append(row)
            inequality_rhs.append(budget)

        solution = self._solve_qp(
            weights, equality_rows, equality_rhs, inequality_rows,
            inequality_rhs
        )
        for outcome, value in zip(new_outcomes, solution):
            estimates[outcome] = float(max(value, 0.0))
            processed.add(outcome)

    def _processed_contribution(
        self, vector: Vector, estimates: dict[Outcome, float]
    ) -> float:
        return float(
            sum(
                self.model.probability(vector, outcome) * value
                for outcome, value in estimates.items()
            )
        )

    @staticmethod
    def _solve_qp(
        weights: np.ndarray,
        equality_rows: list[np.ndarray],
        equality_rhs: list[float],
        inequality_rows: list[np.ndarray],
        inequality_rhs: list[float],
    ) -> np.ndarray:
        """Minimise ``sum_i w_i x_i^2`` under linear constraints, ``x >= 0``."""
        n = weights.size
        a_eq = np.array(equality_rows) if equality_rows else np.zeros((0, n))
        b_eq = np.array(equality_rhs) if equality_rhs else np.zeros(0)
        a_ub = (
            np.array(inequality_rows) if inequality_rows else np.zeros((0, n))
        )
        b_ub = np.array(inequality_rhs) if inequality_rhs else np.zeros(0)

        def objective(x: np.ndarray) -> float:
            return float(np.sum(weights * x ** 2))

        def gradient(x: np.ndarray) -> np.ndarray:
            return 2.0 * weights * x

        constraints = []
        if a_eq.shape[0]:
            constraints.append(
                {
                    "type": "eq",
                    "fun": lambda x, a=a_eq, b=b_eq: a @ x - b,
                    "jac": lambda x, a=a_eq: a,
                }
            )
        if a_ub.shape[0]:
            constraints.append(
                {
                    "type": "ineq",
                    "fun": lambda x, a=a_ub, b=b_ub: b - a @ x,
                    "jac": lambda x, a=a_ub: -a,
                }
            )
        # Start from a feasible-ish least-squares point for the equalities.
        if a_eq.shape[0]:
            x0, *_ = np.linalg.lstsq(a_eq, b_eq, rcond=None)
            x0 = np.clip(x0, 0.0, None)
        else:
            x0 = np.zeros(n)
        result = optimize.minimize(
            objective,
            x0,
            jac=gradient,
            bounds=[(0.0, None)] * n,
            constraints=constraints,
            method="SLSQP",
            options={"maxiter": 500, "ftol": 1e-12},
        )
        if not result.success:
            raise EstimatorDerivationError(
                f"quadratic program did not converge: {result.message}"
            )
        return np.asarray(result.x, dtype=float)
