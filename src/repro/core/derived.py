"""Adapters that turn engine-derived estimators into reusable estimators.

The generic derivation engines (Algorithms 1 and 2) produce a
:class:`repro.core.order_based.DerivedEstimator` — a lookup table keyed by
abstract outcome labels of a finite :class:`DiscreteModel`.  This module
bridges that representation and the rest of the library:

* :func:`derive_for_oblivious_scheme` builds the discrete model for a
  weight-oblivious Poisson scheme over a finite value grid and runs either
  engine;
* :class:`DerivedVectorEstimator` wraps the result as a
  :class:`repro.core.estimator_base.VectorEstimator`, so a derived estimator
  can be plugged into the sum-aggregate machinery, the Monte-Carlo harness
  and the comparison tables exactly like the closed-form estimators.

This is the "automated tool" direction the paper's conclusion hints at:
given a function and a (finite) sampling model, derive the optimal estimator
mechanically instead of by hand.
"""

from __future__ import annotations

import itertools
from collections.abc import Callable, Sequence

from repro.core.estimator_base import VectorEstimator
from repro.core.order_based import (
    DerivedEstimator,
    DiscreteModel,
    OrderBasedDeriver,
)
from repro.core.partition_based import PartitionBasedDeriver
from repro.exceptions import InvalidOutcomeError, InvalidParameterError
from repro.sampling.dispersed import ObliviousPoissonScheme
from repro.sampling.outcomes import VectorOutcome

__all__ = [
    "DerivedVectorEstimator",
    "dense_first_order",
    "sparse_first_batches",
    "derive_for_oblivious_scheme",
]


def dense_first_order(vector: Sequence[float]) -> tuple:
    """The ``max^(L)`` order ≺: the zero vector first, then by the number of
    entries strictly below the maximum (dense vectors early)."""
    if all(value == 0 for value in vector):
        return (-1, 0)
    top = max(vector)
    return (0, sum(1 for value in vector if value < top))


def sparse_first_batches(vector: Sequence[float]) -> int:
    """The ``max^(U)`` ordered partition: by the number of positive entries
    (sparse vectors early)."""
    return sum(1 for value in vector if value > 0)


def outcome_label(outcome: VectorOutcome) -> tuple:
    """Canonical hashable label of a weight-oblivious outcome."""
    indices = tuple(sorted(outcome.sampled))
    return (indices, tuple(outcome.values[i] for i in indices))


class DerivedVectorEstimator(VectorEstimator):
    """A :class:`VectorEstimator` backed by an engine-derived lookup table.

    Parameters
    ----------
    derived:
        The derivation result.
    r:
        Number of entries of the vectors the estimator accepts.
    function_name / variant:
        Metadata used in reports.
    strict:
        When ``True`` (default) an outcome whose label is absent from the
        derivation model raises; when ``False`` it returns 0.0 (useful when
        the model's value grid only approximates the data).
    """

    def __init__(
        self,
        derived: DerivedEstimator,
        r: int,
        function_name: str = "derived",
        variant: str = "derived",
        strict: bool = True,
    ) -> None:
        self._derived = derived
        self._r = int(r)
        self.function_name = function_name
        self.variant = variant
        self.strict = bool(strict)
        self.is_pareto_optimal = True

    @property
    def r(self) -> int:
        return self._r

    @property
    def derived(self) -> DerivedEstimator:
        """The underlying derivation result (lookup table + model)."""
        return self._derived

    def estimate(self, outcome: VectorOutcome) -> float:
        if outcome.r != self._r:
            raise InvalidOutcomeError(
                f"outcome has {outcome.r} entries, estimator expects {self._r}"
            )
        label = outcome_label(outcome)
        if label not in self._derived.estimates:
            if self.strict:
                raise InvalidOutcomeError(
                    f"outcome {label!r} is outside the derivation domain"
                )
            return 0.0
        return self._derived.estimate(label)

    def variance(self, values: Sequence[float]) -> float:
        """Exact variance for a data vector of the derivation domain."""
        return self._derived.variance(tuple(float(v) for v in values))


def derive_for_oblivious_scheme(
    probabilities: Sequence[float],
    function: Callable[[Sequence[float]], float],
    value_grid: Sequence[float],
    method: str = "order",
    order_key: Callable[[Sequence[float]], object] | None = None,
    batch_key: Callable[[Sequence[float]], object] | None = None,
    function_name: str = "derived",
) -> DerivedVectorEstimator:
    """Derive an optimal estimator for ``function`` under weight-oblivious
    Poisson sampling over a finite value grid.

    Parameters
    ----------
    probabilities:
        Per-entry inclusion probabilities.
    function:
        The estimated function, applied to full data vectors.
    value_grid:
        The finite set of values each entry may take (must include the
        values of the data the estimator will be applied to).
    method:
        ``"order"`` runs Algorithm 1 (needs ``order_key``; defaults to the
        dense-first ``max^(L)`` order), ``"partition"`` runs Algorithm 2
        (needs ``batch_key``; defaults to the sparse-first partition).
    """
    scheme = ObliviousPoissonScheme(probabilities)
    grid = sorted({float(v) for v in value_grid})
    if not grid:
        raise InvalidParameterError("value_grid must not be empty")
    vectors = list(itertools.product(grid, repeat=scheme.r))
    model = DiscreteModel.from_scheme(scheme, vectors)
    if method == "order":
        deriver = OrderBasedDeriver(
            model, function, order_key or dense_first_order
        )
        variant = "derived-L"
    elif method == "partition":
        deriver = PartitionBasedDeriver(
            model, function, batch_key or sparse_first_batches
        )
        variant = "derived-U"
    else:
        raise InvalidParameterError(
            f"method must be 'order' or 'partition', got {method!r}"
        )
    derived = deriver.derive()
    return DerivedVectorEstimator(
        derived,
        r=scheme.r,
        function_name=function_name,
        variant=variant,
    )
