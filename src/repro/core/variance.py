"""Exact variance utilities and the paper's closed-form variance expressions.

Two complementary paths are offered:

* :func:`exact_moments` enumerates the (finite) outcome space of a
  weight-oblivious scheme and computes the exact mean and variance of any
  estimator — used to validate unbiasedness and to generate the variance
  curves of Figures 1 and 2;
* the closed forms quoted in the paper (Eqs. (1), (10), (23), (24) and the
  Figure 1 expressions), used as analytic cross-checks and by the
  sample-size planner of Figure 6.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

from repro._validation import check_probability, check_probability_vector
from repro.core.estimator_base import VectorEstimator
from repro.sampling.dispersed import ObliviousPoissonScheme

__all__ = [
    "exact_moments",
    "exact_variance",
    "ht_max_oblivious_variance",
    "or_ht_variance",
    "or_l_variance",
    "or_u_variance",
    "figure1_max_l_variance",
    "figure1_max_u_variance",
    "figure1_max_ht_variance",
]


def exact_moments(
    estimator: VectorEstimator,
    scheme: ObliviousPoissonScheme,
    values: Sequence[float],
) -> tuple[float, float]:
    """Exact mean and variance of ``estimator`` on data ``values``.

    The outcome space of the weight-oblivious Poisson scheme conditioned on
    a data vector has ``2^r`` outcomes, enumerated exactly.  This is the
    scalar reference implementation; the columnar engine in
    :mod:`repro.exact` computes the same moments (bit for bit) from a
    single enumerated :class:`~repro.batch.OutcomeBatch` and is what the
    figure sweeps run on.

    The variance is clamped at ``0.0``: ``second_moment - mean**2``
    suffers catastrophic cancellation as ``p -> 1`` (where the true
    variance vanishes) and can come out a tiny negative.
    """
    mean = 0.0
    second_moment = 0.0
    for outcome, probability in scheme.iter_outcomes(values):
        estimate = estimator.estimate(outcome)
        mean += probability * estimate
        # estimate * estimate (exactly rounded) rather than estimate ** 2:
        # libm pow can be one ulp off the true square, and the columnar
        # engine squares with the exact multiply.
        second_moment += probability * (estimate * estimate)
    return mean, max(second_moment - mean * mean, 0.0)


def exact_variance(
    estimator: VectorEstimator,
    scheme: ObliviousPoissonScheme,
    values: Sequence[float],
) -> float:
    """Exact variance of ``estimator`` on data ``values``."""
    return exact_moments(estimator, scheme, values)[1]


def ht_max_oblivious_variance(
    values: Sequence[float], probabilities: Sequence[float]
) -> float:
    """Variance of the oblivious HT max estimator, Eq. (10)."""
    probabilities = check_probability_vector(probabilities)
    f_value = float(max(values))
    return f_value ** 2 * (1.0 / math.prod(probabilities) - 1.0)


def or_ht_variance(probabilities: Sequence[float]) -> float:
    """Variance of ``OR^(HT)`` on any data with ``OR(v) = 1``, Eq. (23)."""
    probabilities = check_probability_vector(probabilities)
    return 1.0 / math.prod(probabilities) - 1.0


def or_l_variance(p1: float, p2: float, data: tuple[int, int]) -> float:
    """Variance of ``OR^(L)`` (r = 2) on binary data ``(1, 1)`` / ``(1, 0)``.

    Eq. (24) for ``(1, 1)`` and the displayed expression for ``(1, 0)``;
    ``(0, 1)`` follows by symmetry (swap the probabilities).
    """
    p1 = check_probability(p1, "p1")
    p2 = check_probability(p2, "p2")
    union = p1 + p2 - p1 * p2
    data = (int(data[0]), int(data[1]))
    if data == (0, 0):
        return 0.0
    if data == (1, 1):
        return 1.0 / union - 1.0
    if data == (0, 1):
        p1, p2 = p2, p1
        data = (1, 0)
    if data != (1, 0):
        raise ValueError(f"data must be binary, got {data!r}")
    return (
        (1.0 - p1)
        + p1 * (1.0 - p2) * (1.0 / union - 1.0) ** 2
        + p1 * p2 * (1.0 / (p1 * union) - 1.0) ** 2
    )


def or_u_variance(p1: float, p2: float, data: tuple[int, int]) -> float:
    """Variance of ``OR^(U)`` (r = 2) on binary data, by exact enumeration
    of the four outcomes."""
    p1 = check_probability(p1, "p1")
    p2 = check_probability(p2, "p2")
    data = (int(data[0]), int(data[1]))
    if data == (0, 0):
        return 0.0
    slack = 1.0 + max(0.0, 1.0 - p1 - p2)
    v1, v2 = data
    or_value = 1.0

    def estimate(sampled1: bool, sampled2: bool) -> float:
        if not sampled1 and not sampled2:
            return 0.0
        if sampled1 and not sampled2:
            return v1 / (p1 * slack)
        if sampled2 and not sampled1:
            return v2 / (p2 * slack)
        numerator = max(v1, v2) - (
            v1 * (1.0 - p2) + v2 * (1.0 - p1)
        ) / slack
        return numerator / (p1 * p2)

    second_moment = 0.0
    for sampled1 in (False, True):
        for sampled2 in (False, True):
            probability = (p1 if sampled1 else 1.0 - p1) * (
                p2 if sampled2 else 1.0 - p2
            )
            second_moment += probability * estimate(sampled1, sampled2) ** 2
    return second_moment - or_value ** 2


def figure1_max_ht_variance(v1: float, v2: float) -> float:
    """Figure 1 closed form: ``Var[max^(HT)] = 3 max^2`` at ``p = 1/2``."""
    return 3.0 * max(v1, v2) ** 2


def figure1_max_l_variance(v1: float, v2: float) -> float:
    """Figure 1 closed form for ``Var[max^(L)]`` at ``p = 1/2``:
    ``11/9 max^2 + 8/9 min^2 - 16/9 max*min``."""
    high, low = max(v1, v2), min(v1, v2)
    return (11.0 / 9.0) * high ** 2 + (8.0 / 9.0) * low ** 2 - (
        16.0 / 9.0
    ) * high * low


def figure1_max_u_variance(v1: float, v2: float) -> float:
    """Variance of ``max^(U)`` at ``p = 1/2``, derived from the Figure 1
    estimate table: ``max^2 + 2 min^2 - 2 max*min``.

    Note: the paper prints ``3/4 max^2 + 2 min^2 - 2 max*min``, which is
    inconsistent with its own estimate table (and below the
    ``max^2 (1/p - 1)`` lower bound that any nonnegative unbiased estimator
    must obey on data with ``min = 0``).  This reproduction uses the value
    implied by the estimator itself; see EXPERIMENTS.md.
    """
    high, low = max(v1, v2), min(v1, v2)
    return high ** 2 + 2.0 * low ** 2 - 2.0 * high * low
