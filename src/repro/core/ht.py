"""Horvitz-Thompson / inverse-probability estimators (Section 2.2).

The classic HT estimator applies to "all or nothing" outcomes: when the
estimated quantity can be recovered exactly from the outcome the estimate is
its value divided by the probability of such an outcome, and zero otherwise.
For multi-entry functions under weight-oblivious Poisson sampling the most
inclusive such set of outcomes is "every entry sampled", giving Eq. (10) of
the paper.  The broader formulation (an arbitrary set ``S*`` of outcomes on
which both ``f`` and ``P[S* | v]`` are determined) is captured by
:class:`InverseProbabilityEstimator`.
"""

from __future__ import annotations

import math
from collections.abc import Callable, Sequence

import numpy as np

from repro._validation import check_probability, check_probability_vector
from repro.batch.kernels import ht_oblivious_kernel
from repro.batch.outcome_batch import OutcomeBatch
from repro.core.estimator_base import VectorEstimator
from repro.core.functions import BATCH_FUNCTIONS, maximum
from repro.exceptions import InvalidOutcomeError
from repro.sampling.outcomes import VectorOutcome

__all__ = [
    "ht_estimate",
    "ht_variance",
    "HorvitzThompsonOblivious",
    "InverseProbabilityEstimator",
]


def ht_estimate(value: float, probability: float, sampled: bool) -> float:
    """Single-quantity HT estimate: ``value / probability`` when sampled."""
    probability = check_probability(probability)
    return float(value) / probability if sampled else 0.0


def ht_variance(value: float, probability: float) -> float:
    """Variance of the single-quantity HT estimate, Eq. (1):
    ``f(v)^2 (1/p - 1)``."""
    probability = check_probability(probability)
    return float(value) ** 2 * (1.0 / probability - 1.0)


class HorvitzThompsonOblivious(VectorEstimator):
    """HT estimator of any ``f`` under weight-oblivious Poisson sampling.

    The estimate is ``f(v) / prod_i p_i`` when all entries are sampled and
    zero otherwise (Eq. (10)).  It is the optimal inverse-probability
    estimator for quantiles and the range, and Pareto optimal for the range
    and the minimum when ``r = 2`` — but, as the paper shows, not Pareto
    optimal for the maximum or OR.

    Parameters
    ----------
    probabilities:
        Per-entry inclusion probabilities.
    function:
        Callable applied to the full value vector; defaults to the maximum.
    function_name:
        Label used in reports.
    batch_function:
        Optional vectorized twin of ``function`` mapping an ``(n, r)``
        value matrix to the ``(n,)`` vector of per-row function values.
        When provided, :meth:`estimate_batch` is fully vectorized;
        otherwise the twin is looked up in :data:`~repro.core.functions.
        BATCH_FUNCTIONS` (all named primitives are registered there), and
        functions without a twin fall back to a row-by-row apply over the
        rows where every entry is sampled.
    """

    variant = "HT"
    is_monotone = True

    def __init__(
        self,
        probabilities: Sequence[float],
        function: Callable[[Sequence[float]], float] = maximum,
        function_name: str = "max",
        batch_function: Callable[[np.ndarray], np.ndarray] | None = None,
    ) -> None:
        self.probabilities = check_probability_vector(probabilities)
        self.function = function
        self.function_name = function_name
        if batch_function is None:
            batch_function = BATCH_FUNCTIONS.get(function)
        self.batch_function = batch_function
        self._all_sampled_probability = math.prod(self.probabilities)

    @property
    def r(self) -> int:
        return len(self.probabilities)

    def estimate(self, outcome: VectorOutcome) -> float:
        if outcome.r != self.r:
            raise InvalidOutcomeError(
                f"outcome has {outcome.r} entries, estimator expects {self.r}"
            )
        if not outcome.is_full:
            return 0.0
        values = [outcome.values[i] for i in range(self.r)]
        return float(self.function(values)) / self._all_sampled_probability

    def estimate_batch(self, batch: OutcomeBatch) -> np.ndarray:
        """Vectorized Eq. (10): ``f(v) / prod_i p_i`` on full rows."""
        self._check_batch(batch)
        full = batch.all_sampled()
        f_values = np.zeros(len(batch), dtype=np.float64)
        if self.batch_function is not None:
            # Apply only on full rows so a validating function (e.g. the
            # Boolean primitives) sees exactly what the scalar path sees.
            if np.any(full):
                f_values[full] = self.batch_function(batch.values[full])
        else:
            for row in np.nonzero(full)[0]:
                f_values[row] = float(self.function(list(batch.values[row])))
        return ht_oblivious_kernel(
            f_values, full, self._all_sampled_probability
        )

    def variance(self, values: Sequence[float]) -> float:
        """Exact variance for data ``values`` (Eq. (10))."""
        f_value = float(self.function(values))
        return f_value ** 2 * (1.0 / self._all_sampled_probability - 1.0)


class InverseProbabilityEstimator(VectorEstimator):
    """Generalised inverse-probability estimator over a set ``S*``.

    The caller supplies three callables acting on an outcome:

    ``in_s_star(outcome)``
        Membership test of ``S*`` — outcomes on which the estimate is
        positive.
    ``f_star(outcome)``
        The value of ``f`` (determined by the outcome) for outcomes in
        ``S*``.
    ``p_star(outcome)``
        The probability ``P[S* | v]``, computable from the outcome, for
        outcomes in ``S*``.

    The estimate is ``f_star / p_star`` on ``S*`` and zero elsewhere.
    """

    variant = "HT*"
    is_monotone = True

    def __init__(
        self,
        r: int,
        in_s_star: Callable[[VectorOutcome], bool],
        f_star: Callable[[VectorOutcome], float],
        p_star: Callable[[VectorOutcome], float],
        function_name: str = "",
    ) -> None:
        self._r = int(r)
        self.in_s_star = in_s_star
        self.f_star = f_star
        self.p_star = p_star
        self.function_name = function_name

    @property
    def r(self) -> int:
        return self._r

    def estimate(self, outcome: VectorOutcome) -> float:
        if outcome.r != self.r:
            raise InvalidOutcomeError(
                f"outcome has {outcome.r} entries, estimator expects {self.r}"
            )
        if not self.in_s_star(outcome):
            return 0.0
        probability = float(self.p_star(outcome))
        probability = check_probability(probability, "p_star(outcome)")
        return float(self.f_star(outcome)) / probability
