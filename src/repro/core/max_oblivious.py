"""Maximum estimators under weight-oblivious Poisson sampling (Section 4).

Three estimators of ``max(v)`` are provided, all unbiased and nonnegative:

:class:`MaxObliviousHT`
    The Horvitz-Thompson estimator (positive only when all entries are
    sampled) — the baseline the paper improves on.

:class:`MaxObliviousL`
    The order-based estimator ``max^(L)`` which prioritises *dense* data
    vectors (entries similar across instances).  Closed forms exist for
    ``r = 2`` with arbitrary probabilities (Eq. (12)) and for any ``r`` with
    a uniform probability (Theorem 4.2 / Algorithm 3).

:class:`MaxObliviousU` / :class:`MaxObliviousUAsymmetric`
    The partition-based estimators ``max^(U)`` / ``max^(Uas)`` which
    prioritise *sparse* vectors (many zero entries), derived in Section 4.2
    for ``r = 2``.

All dominate the HT estimator; ``L`` and ``U`` are Pareto optimal and
incomparable to each other (Figure 1).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro._validation import check_probability_vector
from repro.batch.kernels import (
    max_l_r2_kernel,
    max_l_uniform_kernel,
    max_u_kernel,
    max_uas_kernel,
)
from repro.batch.outcome_batch import OutcomeBatch
from repro.core.coefficients import uniform_max_l_coefficients
from repro.core.estimator_base import VectorEstimator
from repro.core.functions import maximum
from repro.core.ht import HorvitzThompsonOblivious
from repro.exceptions import InvalidOutcomeError, UnsupportedConfigurationError
from repro.sampling.outcomes import VectorOutcome

__all__ = [
    "MaxObliviousHT",
    "MaxObliviousL",
    "MaxObliviousU",
    "MaxObliviousUAsymmetric",
]


class MaxObliviousHT(HorvitzThompsonOblivious):
    """HT estimator of ``max(v)`` for weight-oblivious Poisson sampling."""

    function_name = "max"

    def __init__(self, probabilities: Sequence[float]) -> None:
        super().__init__(probabilities, function=maximum, function_name="max")


class MaxObliviousL(VectorEstimator):
    """The ``max^(L)`` estimator (Section 4.1).

    The estimate is a linear combination of the sorted entries of the
    *determining vector* of the outcome: the vector that agrees with the
    outcome on sampled entries and has every unsampled entry set to the
    largest sampled value.

    Supported configurations (the ones the paper derives closed forms for):

    * ``r = 2`` with arbitrary inclusion probabilities;
    * any ``r`` with a uniform inclusion probability.

    Parameters
    ----------
    probabilities:
        Per-entry inclusion probabilities.
    """

    function_name = "max"
    variant = "L"
    is_monotone = True
    is_pareto_optimal = True

    def __init__(self, probabilities: Sequence[float]) -> None:
        self.probabilities = check_probability_vector(probabilities)
        self._uniform = len(set(self.probabilities)) == 1
        if not self._uniform and len(self.probabilities) != 2:
            raise UnsupportedConfigurationError(
                "max^(L) closed forms exist for r = 2 (any probabilities) "
                "or uniform probabilities (any r); "
                f"got r = {len(self.probabilities)} with non-uniform p"
            )
        if self._uniform:
            self._alphas = uniform_max_l_coefficients(
                len(self.probabilities), self.probabilities[0]
            )
        else:
            self._alphas = None

    @property
    def r(self) -> int:
        return len(self.probabilities)

    def coefficients(self) -> np.ndarray:
        """Coefficients ``alpha_i`` for the uniform-probability case."""
        if self._alphas is None:
            raise UnsupportedConfigurationError(
                "coefficients are only defined for uniform probabilities"
            )
        return np.array(self._alphas, copy=True)

    def determining_vector(self, outcome: VectorOutcome) -> tuple[float, ...]:
        """The determining vector ``phi(S)`` of an outcome.

        Unsampled entries are set to the largest sampled value (zero for the
        empty outcome).
        """
        self._check(outcome)
        top = outcome.max_sampled()
        return tuple(
            outcome.values[i] if i in outcome.sampled else top
            for i in range(self.r)
        )

    def estimate(self, outcome: VectorOutcome) -> float:
        self._check(outcome)
        if outcome.is_empty:
            return 0.0
        phi = self.determining_vector(outcome)
        if self._uniform:
            ordered = np.sort(np.asarray(phi, dtype=float))[::-1]
            # Same multiply + reduce as the batch kernel (bit-level parity).
            return float((self._alphas * ordered).sum())
        return self._estimate_r2(phi)

    def _estimate_r2(self, phi: tuple[float, ...]) -> float:
        p1, p2 = self.probabilities
        union = p1 + p2 - p1 * p2
        v1, v2 = phi
        if v1 >= v2:
            larger, smaller, p_larger = v1, v2, p1
        else:
            larger, smaller, p_larger = v2, v1, p2
        return (larger - (1.0 - p_larger) * smaller) / (p_larger * union)

    def estimate_batch(self, batch: OutcomeBatch) -> np.ndarray:
        """Vectorized ``max^(L)``: Eq. (12) for ``r = 2``, the Theorem 4.2
        coefficient tables for uniform ``p``."""
        self._check_batch(batch)
        if self._uniform:
            return max_l_uniform_kernel(
                batch.values, batch.sampled, self._alphas
            )
        return max_l_r2_kernel(
            batch.values, batch.sampled, *self.probabilities
        )

    def _check(self, outcome: VectorOutcome) -> None:
        if outcome.r != self.r:
            raise InvalidOutcomeError(
                f"outcome has {outcome.r} entries, estimator expects {self.r}"
            )


class MaxObliviousU(VectorEstimator):
    """The symmetric ``max^(U)`` estimator for ``r = 2`` (Section 4.2).

    Derived with Algorithm 2 using the ordered partition by the number of
    positive entries; it favours sparse data (vectors with zero entries) at
    the cost of higher variance on dense data.
    """

    function_name = "max"
    variant = "U"
    is_pareto_optimal = True
    is_monotone = False

    def __init__(self, probabilities: Sequence[float]) -> None:
        self.probabilities = check_probability_vector(probabilities)
        if len(self.probabilities) != 2:
            raise UnsupportedConfigurationError(
                "the paper derives max^(U) for two instances only"
            )

    @property
    def r(self) -> int:
        return 2

    def estimate(self, outcome: VectorOutcome) -> float:
        if outcome.r != 2:
            raise InvalidOutcomeError(
                f"outcome has {outcome.r} entries, estimator expects 2"
            )
        p1, p2 = self.probabilities
        slack = 1.0 + max(0.0, 1.0 - p1 - p2)
        if outcome.is_empty:
            return 0.0
        if outcome.sampled == frozenset({0}):
            return outcome.values[0] / (p1 * slack)
        if outcome.sampled == frozenset({1}):
            return outcome.values[1] / (p2 * slack)
        v1, v2 = outcome.values[0], outcome.values[1]
        numerator = max(v1, v2) - (v1 * (1.0 - p2) + v2 * (1.0 - p1)) / slack
        return numerator / (p1 * p2)

    def estimate_batch(self, batch: OutcomeBatch) -> np.ndarray:
        """Vectorized ``max^(U)`` over the four inclusion patterns."""
        self._check_batch(batch)
        return max_u_kernel(batch.values, batch.sampled, *self.probabilities)


class MaxObliviousUAsymmetric(VectorEstimator):
    """The asymmetric ``max^(Uas)`` estimator for ``r = 2`` (Section 4.2).

    Obtained by processing vectors of the form ``(v1, 0)`` before ``(0, v2)``
    in Algorithm 1 with nonnegativity constraints.  Pareto optimal but not
    symmetric: it favours the first entry.
    """

    function_name = "max"
    variant = "Uas"
    is_pareto_optimal = True
    is_monotone = False

    def __init__(self, probabilities: Sequence[float]) -> None:
        self.probabilities = check_probability_vector(probabilities)
        if len(self.probabilities) != 2:
            raise UnsupportedConfigurationError(
                "the paper derives max^(Uas) for two instances only"
            )

    @property
    def r(self) -> int:
        return 2

    def estimate(self, outcome: VectorOutcome) -> float:
        if outcome.r != 2:
            raise InvalidOutcomeError(
                f"outcome has {outcome.r} entries, estimator expects 2"
            )
        p1, p2 = self.probabilities
        denominator2 = max(1.0 - p1, p2)
        if outcome.is_empty:
            return 0.0
        if outcome.sampled == frozenset({0}):
            return outcome.values[0] / p1
        if outcome.sampled == frozenset({1}):
            return outcome.values[1] / denominator2
        v1, v2 = outcome.values[0], outcome.values[1]
        numerator = (
            max(v1, v2)
            - p2 * (1.0 - p1) / denominator2 * v2
            - (1.0 - p2) * v1
        )
        return numerator / (p1 * p2)

    def estimate_batch(self, batch: OutcomeBatch) -> np.ndarray:
        """Vectorized ``max^(Uas)`` over the four inclusion patterns."""
        self._check_batch(batch)
        return max_uas_kernel(
            batch.values, batch.sampled, *self.probabilities
        )
