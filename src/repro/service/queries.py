"""Declarative queries over a :class:`~repro.service.SketchStore`.

A :class:`Query` names an aggregate (distinct count, subset sum, max
dominance, L1 distance, or a custom function) over one or more instances
of a named engine; :class:`QueryPlanner` routes it to the existing
estimator paths — the Section-8 aggregate estimators of
:mod:`repro.aggregates` and the vectorized :mod:`repro.batch` kernels,
via the :mod:`repro.streaming.query` adapters — and memoises results in a
**version-keyed cache**: the cache key embeds the engine's monotone
ingest version, so any ingest invalidates all cached results of that
engine automatically and a hit is only ever served for the exact state it
was computed from.

Routing
-------
========== ==========================================================
kind        path
========== ==========================================================
distinct    :func:`repro.streaming.query.distinct_count`
            (Section 8.1 ``L`` / ``HT`` estimators)
sum         with ``estimator``: :func:`~repro.streaming.query.
            sum_aggregate` (vectorized batch path); without: rank
            conditioning for bottom-k, Horvitz-Thompson for Poisson
dominance   :func:`repro.streaming.query.max_dominance`
            (``max^(HT)`` / ``max^(L)`` on PPS sketches)
l1          :func:`repro.streaming.query.l1_distance`
custom      ``query.fn(sketches)``
========== ==========================================================
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field

from repro.exceptions import InvalidParameterError
from repro.obs import span
from repro.service.confidence import query_confidence
from repro.streaming.query import (
    distinct_count,
    l1_distance,
    max_dominance,
    rank_conditioning_total,
    sum_aggregate,
)
from repro.streaming.sketch import StreamingBottomK, StreamingPoisson

__all__ = ["Query", "QueryPlanner", "QueryResult", "query_value_json"]

_KINDS = ("distinct", "sum", "dominance", "l1", "custom")


@dataclass(frozen=True)
class Query:
    """A declarative aggregate query over named instances.

    Queries are frozen and hashable (callables hash by identity), which
    makes them directly usable as cache keys; reuse the same ``Query``
    object to hit the planner cache for predicate/custom queries.
    """

    kind: str
    instances: tuple
    #: distinct-count variant: ``"l"`` (variance-optimal) or ``"ht"``
    variant: str = "l"
    #: per-key :class:`~repro.core.estimator_base.VectorEstimator` for
    #: multi-instance sum queries
    estimator: object = None
    #: optional key predicate restricting the aggregate to a subset
    predicate: object = None
    #: custom query function ``fn(sketches) -> value``
    fn: object = field(default=None)
    #: report estimate quality (``cv`` / ``ci90``) alongside the value;
    #: raises :class:`~repro.exceptions.ConfidenceUnavailableError` for
    #: query shapes without an applicable variance estimator
    confidence: bool = False

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise InvalidParameterError(
                f"unknown query kind {self.kind!r}; expected one of "
                f"{_KINDS}"
            )
        object.__setattr__(self, "instances", tuple(self.instances))

    # ------------------------------------------------------------------
    # Convenience constructors
    # ------------------------------------------------------------------
    @classmethod
    def distinct(
        cls, instance1, instance2, variant: str = "l", predicate=None
    ) -> "Query":
        """Distinct count (union size) of two instances."""
        return cls(
            "distinct",
            (instance1, instance2),
            variant=variant,
            predicate=predicate,
        )

    @classmethod
    def sum(cls, *instances, estimator=None, predicate=None) -> "Query":
        """Subset-sum over one instance, or an estimator-weighted sum
        aggregate over several."""
        return cls(
            "sum", instances, estimator=estimator, predicate=predicate
        )

    @classmethod
    def dominance(cls, instance1, instance2, predicate=None) -> "Query":
        """Max-dominance norm of two PPS instances."""
        return cls("dominance", (instance1, instance2), predicate=predicate)

    @classmethod
    def l1(cls, instance1, instance2, predicate=None) -> "Query":
        """L1 distance of two weight-oblivious instances."""
        return cls("l1", (instance1, instance2), predicate=predicate)

    @classmethod
    def custom(cls, *instances, fn) -> "Query":
        """Run ``fn`` on the merged sketches of ``instances``."""
        return cls("custom", instances, fn=fn)


@dataclass(frozen=True)
class QueryResult:
    """A query value plus the engine version it was computed at.

    ``confidence`` carries the estimate-quality payload
    (:func:`repro.service.confidence.query_confidence`) when the query
    asked for it, else ``None``.
    """

    value: object
    version: int
    from_cache: bool
    confidence: dict | None = None

    def __float__(self) -> float:
        return float(self.value)


class QueryPlanner:
    """Routes queries to the estimator paths, caching by engine version.

    The cache maps ``(store name, engine version, query)`` to the
    computed value.  Because the store bumps the version on every ingest,
    stale entries are never served; they age out of the LRU bound.
    Unhashable queries (e.g. list-valued instance labels) are computed
    but never cached.
    """

    def __init__(self, store, max_cache_entries: int = 1024) -> None:
        if max_cache_entries <= 0:
            raise InvalidParameterError(
                "max_cache_entries must be positive, got "
                f"{max_cache_entries}"
            )
        self._store = store
        self.max_cache_entries = int(max_cache_entries)
        self._cache: OrderedDict[tuple, object] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    @staticmethod
    def _param_token(value: object):
        """Hashable cache token of one query parameter.

        Plain values key by value, but behavioural parameters — custom
        query functions, predicates, estimator objects — key by
        *identity*: two distinct callables must never share a cache
        entry even when they compare equal (bound methods of equal
        instances, or user callables with an ``__eq__`` coarser than
        their behaviour).  The object itself rides along in the token so
        its ``id`` cannot be recycled while the cache still holds it.
        """
        if value is None or isinstance(
            value, (str, int, float, bool, bytes, frozenset)
        ):
            return value
        return (id(value), value)

    @classmethod
    def _cache_key(cls, name: str, version: int, query: Query):
        key = (
            name,
            version,
            query.kind,
            query.instances,
            query.variant,
            cls._param_token(query.estimator),
            cls._param_token(query.predicate),
            cls._param_token(query.fn),
            bool(query.confidence),
        )
        try:
            hash(key)
        except TypeError:
            return None
        return key

    def resize(self, max_cache_entries: int) -> None:
        """Change the LRU bound, evicting oldest entries if shrinking."""
        if max_cache_entries <= 0:
            raise InvalidParameterError(
                "max_cache_entries must be positive, got "
                f"{max_cache_entries}"
            )
        with self._lock:
            self.max_cache_entries = int(max_cache_entries)
            while len(self._cache) > self.max_cache_entries:
                self._cache.popitem(last=False)

    def cache_stats(self) -> dict:
        """Hit/miss counters and current size, for monitoring surfaces."""
        with self._lock:
            hits, misses, size = self.hits, self.misses, len(self._cache)
        total = hits + misses
        return {
            "hits": hits,
            "misses": misses,
            "hit_rate": hits / total if total else 0.0,
            "entries": size,
            "max_entries": self.max_cache_entries,
        }

    def peek(self, name: str, query: Query) -> QueryResult | None:
        """The cached result at the store's current version, or ``None``.

        Never computes anything and never waits on the store's
        per-engine locks — a cache probe cheap enough for a serving
        event loop to call inline before deciding whether to pay for a
        recompute on a worker thread.  A hit counts toward :attr:`hits`;
        a miss leaves the counters untouched (the caller is expected to
        follow up with :meth:`run`).
        """
        version = self._store.version_hint(name)
        key = self._cache_key(name, version, query)
        if key is None:
            return None
        with self._lock:
            if key in self._cache:
                self._cache.move_to_end(key)
                self.hits += 1
                value, confidence = self._cache[key]
                return QueryResult(value, version, True, confidence)
        return None

    def run(self, name: str, query: Query) -> QueryResult:
        """Execute ``query`` against store ``name``, serving from the
        cache when the engine version has not moved."""
        with span(
            "planner.query", engine=name, kind=query.kind
        ) as span_attrs:
            cached = self.peek(name, query)
            if cached is not None:
                span_attrs["cache"] = "hit"
                return cached
            span_attrs["cache"] = "miss"
            # A consistent view: the version the sketches are merged at is
            # the version the result is cached under (ingests between the
            # check above and here just cause a recompute at the newer
            # version).
            version, sketches = self._store.snapshot_view(
                name, query.instances
            )
            value = self._dispatch(sketches, query)
            # computed against the same snapshot_view sketches as the
            # value, so the quality payload describes exactly this
            # estimate (and rides the cache entry with it)
            confidence = (
                query_confidence(sketches, query, value)
                if query.confidence
                else None
            )
            key = self._cache_key(name, version, query)
            if key is not None:
                with self._lock:
                    self.misses += 1
                    self._cache[key] = (value, confidence)
                    while len(self._cache) > self.max_cache_entries:
                        self._cache.popitem(last=False)
            return QueryResult(value, version, False, confidence)

    def execute(self, name: str, query: Query):
        """Uncached execution (always recomputes, never stores)."""
        _, sketches = self._store.snapshot_view(name, query.instances)
        return self._dispatch(sketches, query)

    def clear_cache(self) -> None:
        with self._lock:
            self._cache.clear()

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    @staticmethod
    def _pair(sketches: list, kind: str) -> tuple:
        if len(sketches) != 2:
            raise InvalidParameterError(
                f"{kind} queries take exactly two instances, got "
                f"{len(sketches)}"
            )
        return sketches[0], sketches[1]

    def _dispatch(self, sketches: list, query: Query):
        kind = query.kind
        if kind == "distinct":
            sketch1, sketch2 = self._pair(sketches, kind)
            return distinct_count(
                sketch1,
                sketch2,
                variant=query.variant,
                predicate=query.predicate,
            )
        if kind == "dominance":
            sketch1, sketch2 = self._pair(sketches, kind)
            return max_dominance(
                sketch1, sketch2, predicate=query.predicate
            )
        if kind == "l1":
            sketch1, sketch2 = self._pair(sketches, kind)
            return l1_distance(sketch1, sketch2, predicate=query.predicate)
        if kind == "sum":
            if query.estimator is not None:
                return sum_aggregate(
                    sketches, query.estimator, predicate=query.predicate
                )
            if len(sketches) != 1:
                raise InvalidParameterError(
                    "multi-instance sum queries require an estimator"
                )
            sketch = sketches[0]
            if isinstance(sketch, StreamingBottomK):
                return rank_conditioning_total(sketch, query.predicate)
            if isinstance(sketch, StreamingPoisson):
                return sketch.to_sample().horvitz_thompson_total(
                    query.predicate
                )
            raise InvalidParameterError(
                "sum queries support streaming sketches, got "
                f"{type(sketch).__name__}"
            )
        # __post_init__ guarantees kind == "custom" here
        if query.fn is None:
            raise InvalidParameterError(
                "custom queries require a query function (fn=...)"
            )
        return query.fn(sketches)


def query_value_json(value: object) -> object:
    """JSON-encodable form of a query result value.

    Shared by every serving surface (the CLI and the HTTP front-end):
    plain numbers pass through, the aggregate result objects
    (estimate/counts, ht/l distinct-count pairs) flatten to dicts, and
    anything else falls back to ``repr``.
    """
    if isinstance(value, (int, float)):
        return value
    if hasattr(value, "estimate") and hasattr(value, "counts"):
        return {
            "estimate": float(value.estimate),
            "counts": dict(value.counts),
            "estimator": value.estimator,
        }
    if hasattr(value, "ht") and hasattr(value, "l"):
        return {
            "ht": float(value.ht),
            "l": float(value.l),
            "n_sampled_keys": int(value.n_sampled_keys),
        }
    return repr(value)
