"""Versioned little-endian binary wire format for sketch state.

The codec turns :class:`~repro.streaming.StreamingBottomK`,
:class:`~repro.streaming.StreamingPoisson` and full
:class:`~repro.streaming.StreamEngine` state into self-describing byte
blobs (:func:`to_bytes`) and back (:func:`from_bytes`).  Restoration is
*state-exact*: the restored object produces identical ``to_sample()``
snapshots, identical query results, and bit-identical behaviour on any
subsequent stream of updates — entries, ranks, seeds, heap tie-order,
discard counters and seed-assigner configuration all round-trip.

Layout
------
Every blob starts with a fixed header::

    magic  b"RSVC"   4 bytes
    version          u16   (currently 1)
    kind             u8    (1 bottom-k sketch, 2 Poisson sketch,
                            3 engine, 4 store snapshot)

followed by a kind-specific body.  All integers are little-endian and
unsigned unless noted; floats are raw IEEE-754 doubles, so ranks and
values survive bit for bit.  Variable-length payloads are length-prefixed.
Keys, instance labels and salts are encoded with a small tagged union
covering ``None``, booleans, 64-bit and big integers, floats, strings,
bytes and (nested) tuples.

Entry columns are stored columnar — all keys, then the value/rank/seed
arrays as raw ``<f8`` buffers — so large Poisson sketches encode and
decode at NumPy speed.

Decoding failures (bad magic, unsupported version, truncation, trailing
garbage, corrupt payloads) raise
:class:`~repro.exceptions.SketchCodecError`, as does encoding state the
format cannot represent (custom rank families or key types, engines built
from custom factories).
"""

from __future__ import annotations

import struct

import numpy as np

from repro.exceptions import (
    InvalidParameterError,
    ReproError,
    SketchCodecError,
)
from repro.sampling.ranks import RankFamily, rank_family_from_name
from repro.streaming.engine import StreamEngine
from repro.streaming.sketch import StreamingBottomK, StreamingPoisson

__all__ = [
    "FORMAT_VERSION",
    "MAGIC",
    "Reader",
    "Writer",
    "from_bytes",
    "read_label",
    "store_from_bytes",
    "store_to_bytes",
    "to_bytes",
    "write_label",
]

MAGIC = b"RSVC"
FORMAT_VERSION = 1

_KIND_BOTTOM_K = 1
_KIND_POISSON = 2
_KIND_ENGINE = 3
_KIND_STORE = 4

_SKETCH_KINDS = {"bottom_k": _KIND_BOTTOM_K, "poisson": _KIND_POISSON}

_U8 = struct.Struct("<B")
_U16 = struct.Struct("<H")
_U32 = struct.Struct("<I")
_U64 = struct.Struct("<Q")
_I64 = struct.Struct("<q")
_F64 = struct.Struct("<d")

_I64_MIN, _I64_MAX = -(2**63), 2**63 - 1

# tagged-union tags for keys / instance labels / salts
_TAG_NONE = 0
_TAG_FALSE = 1
_TAG_TRUE = 2
_TAG_INT = 3
_TAG_BIGINT = 4
_TAG_FLOAT = 5
_TAG_STR = 6
_TAG_BYTES = 7
_TAG_TUPLE = 8


class _Writer:
    """Append-only little-endian byte sink."""

    def __init__(self) -> None:
        self._buffer = bytearray()

    def raw(self, data: bytes) -> None:
        self._buffer += data

    def u8(self, value: int) -> None:
        self._buffer += _U8.pack(value)

    def u16(self, value: int) -> None:
        self._buffer += _U16.pack(value)

    def u32(self, value: int) -> None:
        self._buffer += _U32.pack(value)

    def u64(self, value: int) -> None:
        self._buffer += _U64.pack(value)

    def i64(self, value: int) -> None:
        self._buffer += _I64.pack(value)

    def f64(self, value: float) -> None:
        self._buffer += _F64.pack(value)

    def blob(self, data: bytes) -> None:
        self.u64(len(data))
        self.raw(data)

    def text(self, value: str) -> None:
        self.blob(value.encode("utf-8"))

    def f64_column(self, values) -> None:
        self.raw(np.asarray(values, dtype="<f8").tobytes())

    def u32_column(self, values) -> None:
        self.raw(np.asarray(values, dtype="<u4").tobytes())

    def getvalue(self) -> bytes:
        return bytes(self._buffer)


class _Reader:
    """Bounds-checked little-endian byte source."""

    def __init__(self, data: bytes) -> None:
        self._data = bytes(data)
        self._pos = 0

    def _take(self, n: int) -> bytes:
        end = self._pos + n
        if n < 0 or end > len(self._data):
            raise SketchCodecError(
                f"truncated buffer: needed {n} bytes at offset "
                f"{self._pos}, only {len(self._data) - self._pos} left"
            )
        chunk = self._data[self._pos:end]
        self._pos = end
        return chunk

    @property
    def position(self) -> int:
        """Current decode offset — error context for corrupt payloads."""
        return self._pos

    @property
    def remaining(self) -> int:
        """Bytes left after the current position."""
        return len(self._data) - self._pos

    def raw(self, n: int) -> bytes:
        return self._take(n)

    def u8(self) -> int:
        return _U8.unpack(self._take(1))[0]

    def u16(self) -> int:
        return _U16.unpack(self._take(2))[0]

    def u32(self) -> int:
        return _U32.unpack(self._take(4))[0]

    def u64(self) -> int:
        return _U64.unpack(self._take(8))[0]

    def i64(self) -> int:
        return _I64.unpack(self._take(8))[0]

    def f64(self) -> float:
        return _F64.unpack(self._take(8))[0]

    def blob(self) -> bytes:
        return self._take(self.u64())

    def text(self) -> str:
        try:
            return self.blob().decode("utf-8")
        except UnicodeDecodeError as exc:
            raise SketchCodecError(f"corrupt string payload: {exc}") from exc

    def f64_column(self, count: int) -> np.ndarray:
        return np.frombuffer(self._take(8 * count), dtype="<f8")

    def u32_column(self, count: int) -> np.ndarray:
        return np.frombuffer(self._take(4 * count), dtype="<u4")

    def expect_end(self) -> None:
        if self._pos != len(self._data):
            raise SketchCodecError(
                f"{len(self._data) - self._pos} trailing bytes after the "
                "payload"
            )


# ----------------------------------------------------------------------
# Labels (keys, instance labels, salts)
# ----------------------------------------------------------------------
def _write_label(writer: _Writer, label: object) -> None:
    if label is None:
        writer.u8(_TAG_NONE)
    elif isinstance(label, (bool, np.bool_)):
        writer.u8(_TAG_TRUE if label else _TAG_FALSE)
    elif isinstance(label, (int, np.integer)):
        value = int(label)
        if _I64_MIN <= value <= _I64_MAX:
            writer.u8(_TAG_INT)
            writer.i64(value)
        else:
            writer.u8(_TAG_BIGINT)
            length = (value.bit_length() + 8) // 8
            writer.blob(value.to_bytes(length, "little", signed=True))
    elif isinstance(label, (float, np.floating)):
        writer.u8(_TAG_FLOAT)
        writer.f64(float(label))
    elif isinstance(label, str):
        writer.u8(_TAG_STR)
        writer.text(label)
    elif isinstance(label, (bytes, bytearray)):
        writer.u8(_TAG_BYTES)
        writer.blob(bytes(label))
    elif isinstance(label, tuple):
        writer.u8(_TAG_TUPLE)
        writer.u32(len(label))
        for item in label:
            _write_label(writer, item)
    else:
        raise SketchCodecError(
            f"cannot encode a key/label of type {type(label).__name__}; "
            "supported types: None, bool, int, float, str, bytes, tuple"
        )


def _read_label(reader: _Reader) -> object:
    tag = reader.u8()
    if tag == _TAG_NONE:
        return None
    if tag == _TAG_FALSE:
        return False
    if tag == _TAG_TRUE:
        return True
    if tag == _TAG_INT:
        return reader.i64()
    if tag == _TAG_BIGINT:
        return int.from_bytes(reader.blob(), "little", signed=True)
    if tag == _TAG_FLOAT:
        return reader.f64()
    if tag == _TAG_STR:
        return reader.text()
    if tag == _TAG_BYTES:
        return reader.blob()
    if tag == _TAG_TUPLE:
        return tuple(_read_label(reader) for _ in range(reader.u32()))
    raise SketchCodecError(f"unknown label tag {tag}")


# ----------------------------------------------------------------------
# Shared sketch configuration
# ----------------------------------------------------------------------
def _write_family(writer: _Writer, family: RankFamily) -> None:
    # Delegate to the registry in repro.sampling.ranks (the single source
    # of truth for family <-> name): a family only encodes if its name
    # resolves back to exactly its class.
    try:
        registered = rank_family_from_name(family.name)
    except InvalidParameterError:
        registered = None
    if registered is None or type(family) is not type(registered):
        raise SketchCodecError(
            "only the built-in rank families can be encoded; got "
            f"{type(family).__name__}"
        )
    writer.text(family.name)


def _read_family_name(reader: _Reader) -> str:
    name = reader.text()
    try:
        rank_family_from_name(name)
    except InvalidParameterError as exc:
        raise SketchCodecError(str(exc)) from exc
    return name


def _write_common(writer: _Writer, state: dict) -> None:
    _write_label(writer, state["instance"])
    _write_family(writer, state["rank_family"])
    _write_label(writer, state["salt"])
    writer.u8(1 if state["coordinated"] else 0)
    writer.u64(state["n_updates"])
    writer.u64(state["n_discarded_keys"])


def _read_common(reader: _Reader) -> dict:
    state = {"instance": _read_label(reader)}
    state["rank_family"] = _read_family_name(reader)
    salt = _read_label(reader)
    if not isinstance(salt, int) or isinstance(salt, bool):
        raise SketchCodecError(
            "seed-assigner salt must decode to an integer, got "
            f"{type(salt).__name__}"
        )
    state["salt"] = salt
    coordinated = reader.u8()
    if coordinated > 1:
        raise SketchCodecError(
            f"coordinated flag must be 0 or 1, got {coordinated}"
        )
    state["coordinated"] = bool(coordinated)
    state["n_updates"] = reader.u64()
    state["n_discarded_keys"] = reader.u64()
    return state


# ----------------------------------------------------------------------
# Sketch bodies
# ----------------------------------------------------------------------
def _write_sketch_state(writer: _Writer, state: dict) -> None:
    writer.u8(_SKETCH_KINDS[state["kind"]])
    _write_sketch_body(writer, state)


def _write_sketch_body(writer: _Writer, state: dict) -> None:
    kind = state["kind"]
    _write_common(writer, state)
    entries = state["entries"]
    if kind == "bottom_k":
        writer.u64(state["k"])
        writer.u64(len(entries))
        for entry in entries:
            _write_label(writer, entry[0])
        writer.f64_column([entry[1] for entry in entries])
        writer.f64_column([entry[2] for entry in entries])
        writer.f64_column([entry[3] for entry in entries])
        writer.u32_column([entry[4] for entry in entries])
    else:
        writer.f64(state["threshold"])
        writer.u64(len(entries))
        for entry in entries:
            _write_label(writer, entry[0])
        writer.f64_column([entry[1] for entry in entries])
        writer.f64_column([entry[2] for entry in entries])


def _read_sketch_state(reader: _Reader) -> dict:
    return _read_sketch_body(reader, reader.u8())


def _read_sketch_body(reader: _Reader, kind_byte: int) -> dict:
    if kind_byte == _KIND_BOTTOM_K:
        state = _read_common(reader)
        state["kind"] = "bottom_k"
        state["k"] = reader.u64()
        count = reader.u64()
        keys = [_read_label(reader) for _ in range(count)]
        values = reader.f64_column(count)
        ranks = reader.f64_column(count)
        seeds = reader.f64_column(count)
        positions = reader.u32_column(count)
        state["entries"] = tuple(
            (keys[i], float(values[i]), float(ranks[i]), float(seeds[i]),
             int(positions[i]))
            for i in range(count)
        )
        return state
    if kind_byte == _KIND_POISSON:
        state = _read_common(reader)
        state["kind"] = "poisson"
        state["threshold"] = reader.f64()
        count = reader.u64()
        keys = [_read_label(reader) for _ in range(count)]
        values = reader.f64_column(count)
        ranks = reader.f64_column(count)
        state["entries"] = tuple(
            (keys[i], float(values[i]), float(ranks[i]))
            for i in range(count)
        )
        return state
    raise SketchCodecError(f"unknown sketch kind byte {kind_byte}")


def _restore_sketch(state: dict):
    try:
        if state["kind"] == "bottom_k":
            return StreamingBottomK.from_state(state)
        return StreamingPoisson.from_state(state)
    except ReproError as exc:
        raise SketchCodecError(f"invalid sketch state: {exc}") from exc


# ----------------------------------------------------------------------
# Engine bodies
# ----------------------------------------------------------------------
def _write_engine_state(writer: _Writer, state: dict) -> None:
    kind = state["kind"]
    writer.u8(_SKETCH_KINDS[kind])
    if kind == "bottom_k":
        writer.u64(state["k"])
    else:
        writer.f64(state["threshold"])
    _write_family(writer, state["rank_family"])
    _write_label(writer, state["salt"])
    writer.u8(1 if state["coordinated"] else 0)
    writer.u32(state["n_shards"])
    writer.u64(state["n_updates"])
    writer.u64(len(state["instances"]))
    for label, shard_states in state["instances"].items():
        _write_label(writer, label)
        for shard_state in shard_states:
            _write_sketch_state(writer, shard_state)


def _read_engine_state(reader: _Reader) -> dict:
    kind_byte = reader.u8()
    if kind_byte not in (_KIND_BOTTOM_K, _KIND_POISSON):
        raise SketchCodecError(f"unknown engine kind byte {kind_byte}")
    state: dict = {}
    if kind_byte == _KIND_BOTTOM_K:
        state["kind"] = "bottom_k"
        state["k"] = reader.u64()
    else:
        state["kind"] = "poisson"
        state["threshold"] = reader.f64()
    state["rank_family"] = _read_family_name(reader)
    salt = _read_label(reader)
    if not isinstance(salt, int) or isinstance(salt, bool):
        raise SketchCodecError("seed-assigner salt must decode to an integer")
    state["salt"] = salt
    state["coordinated"] = bool(reader.u8())
    state["n_shards"] = reader.u32()
    state["n_updates"] = reader.u64()
    instances: dict[object, tuple] = {}
    for _ in range(reader.u64()):
        label = _read_label(reader)
        instances[label] = tuple(
            _read_sketch_state(reader) for _ in range(state["n_shards"])
        )
    state["instances"] = instances
    return state


def _restore_engine(state: dict) -> StreamEngine:
    try:
        return StreamEngine.from_state(state)
    except ReproError as exc:
        raise SketchCodecError(f"invalid engine state: {exc}") from exc


# ----------------------------------------------------------------------
# Public API
# ----------------------------------------------------------------------
def _write_header(writer: _Writer, kind: int) -> None:
    writer.raw(MAGIC)
    writer.u16(FORMAT_VERSION)
    writer.u8(kind)


def _read_header(reader: _Reader) -> int:
    magic = reader.raw(len(MAGIC))
    if magic != MAGIC:
        raise SketchCodecError(
            f"bad magic {magic!r}: not a repro.service blob"
        )
    version = reader.u16()
    if not 1 <= version <= FORMAT_VERSION:
        raise SketchCodecError(
            f"unsupported wire-format version {version}; this build reads "
            f"versions 1..{FORMAT_VERSION}"
        )
    return reader.u8()


def to_bytes(obj) -> bytes:
    """Serialize a sketch or engine to the versioned binary wire format."""
    writer = _Writer()
    if isinstance(obj, (StreamingBottomK, StreamingPoisson)):
        state = obj.state_dict()
        _write_header(writer, _SKETCH_KINDS[state["kind"]])
        _write_sketch_body(writer, state)
    elif isinstance(obj, StreamEngine):
        try:
            state = obj.state_dict()
        except ReproError as exc:
            raise SketchCodecError(str(exc)) from exc
        _write_header(writer, _KIND_ENGINE)
        _write_engine_state(writer, state)
    else:
        raise SketchCodecError(
            f"cannot encode objects of type {type(obj).__name__}; "
            "expected StreamingBottomK, StreamingPoisson or StreamEngine"
        )
    return writer.getvalue()


#: exceptions a corrupt-but-well-framed payload can smuggle out of the
#: decode path: struct unpacking, NumPy buffer slicing, int/float
#: conversions and oversized allocations.  The public decoders translate
#: them into SketchCodecError with the reader offset, so callers see one
#: exception type (with context) for every flavour of corruption.
_STRAY_DECODE_ERRORS = (
    struct.error, ValueError, TypeError, KeyError, IndexError,
    OverflowError, MemoryError,
)


def from_bytes(data: bytes):
    """Restore a sketch or engine serialized by :func:`to_bytes`.

    The restored object is state-identical to the one encoded: same
    snapshots, same query results, bit-identical subsequent updates.
    Any corruption surfaces as :class:`SketchCodecError` carrying the
    decode offset — never a bare ``struct.error`` or NumPy exception.
    """
    reader = _Reader(data)
    try:
        kind = _read_header(reader)
        if kind in (_KIND_BOTTOM_K, _KIND_POISSON):
            obj = _restore_sketch(_read_sketch_body(reader, kind))
        elif kind == _KIND_ENGINE:
            obj = _restore_engine(_read_engine_state(reader))
        elif kind == _KIND_STORE:
            raise SketchCodecError(
                "blob is a store snapshot; use SketchStore.restore() or "
                "store_from_bytes()"
            )
        else:
            raise SketchCodecError(f"unknown payload kind {kind}")
        reader.expect_end()
    except SketchCodecError:
        raise
    except _STRAY_DECODE_ERRORS as exc:
        raise SketchCodecError(
            f"corrupt payload near offset {reader.position}: {exc!r}"
        ) from exc
    return obj


def store_to_bytes(items) -> bytes:
    """Serialize ``(name, version, engine_blob)`` triples to a store blob.

    ``engine_blob`` entries are full :func:`to_bytes` engine payloads, so
    a store snapshot is a named, versioned container of independently
    decodable engines.
    """
    writer = _Writer()
    _write_header(writer, _KIND_STORE)
    items = list(items)
    writer.u64(len(items))
    for name, version, blob in items:
        writer.text(name)
        writer.u64(version)
        writer.blob(blob)
    return writer.getvalue()


# Shared little-endian primitives.  The columnar ingest batch format of
# :mod:`repro.server.wire` is built on the same bounds-checked
# reader/writer and the same tagged label union, so keys and instance
# labels encode identically in snapshots and in ingest batches.
Reader = _Reader
Writer = _Writer
read_label = _read_label
write_label = _write_label


def store_from_bytes(data: bytes) -> list[tuple[str, int, StreamEngine]]:
    """Decode a store blob into ``(name, version, engine)`` triples.

    Corruption anywhere in the container or in an embedded engine blob
    raises :class:`SketchCodecError` with the offending offset.
    """
    reader = _Reader(data)
    try:
        kind = _read_header(reader)
        if kind != _KIND_STORE:
            raise SketchCodecError(
                f"expected a store snapshot (kind {_KIND_STORE}), got kind "
                f"{kind}"
            )
        items = []
        for _ in range(reader.u64()):
            name = reader.text()
            version = reader.u64()
            engine = from_bytes(reader.blob())
            if not isinstance(engine, StreamEngine):
                raise SketchCodecError(
                    f"store entry {name!r} does not contain an engine"
                )
            items.append((name, version, engine))
        reader.expect_end()
    except SketchCodecError:
        raise
    except _STRAY_DECODE_ERRORS as exc:
        raise SketchCodecError(
            f"corrupt store snapshot near offset {reader.position}: {exc!r}"
        ) from exc
    return items
