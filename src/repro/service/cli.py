"""Command-line front end of the sketch service.

Drives the persistent store end-to-end from the shell::

    python -m repro.service ingest   --store s.bin --name traffic \\
        --kind poisson --threshold 0.5 --salt 7 --input updates.csv
    python -m repro.service snapshot --store s.bin
    python -m repro.service merge    --out merged.bin s1.bin s2.bin
    python -m repro.service query    --store merged.bin --name traffic \\
        --kind distinct --instances monday tuesday
    python -m repro.service serve    --store s.bin --port 8080 \\
        --create name=traffic,kind=poisson,threshold=0.5,salt=7
    python -m repro.service serve    --store s.bin --wal-dir s.wal \\
        --fsync always
    python -m repro.service recover  --store s.bin --wal-dir s.wal

``serve`` boots the :mod:`repro.server` asyncio HTTP front-end over the
store file (restored when it exists, created otherwise), prints one
JSON "listening" line to stdout, and on SIGINT/SIGTERM shuts down
gracefully — draining in-flight requests and snapshotting back to the
store file if any engine changed.  With ``--wal-dir`` the server first
*recovers* (snapshot + write-ahead-log tail, exactly what ``recover``
does offline), then appends every ingest batch to the log before
applying it, so a ``kill -9`` loses at most the unsynced tail — nothing
at all under ``--fsync always``.

Update streams are CSV (``instance,key,value`` columns, optional header),
JSON lines (objects with ``instance`` / ``key`` / ``value`` fields;
selected with ``--format jsonl`` or a ``.jsonl`` suffix), or binary
columnar batch files (:mod:`repro.server.wire`; ``--format binary`` or a
``.rbat`` suffix).  ``convert`` re-encodes a CSV/JSONL stream into the
binary format — the same bytes ``POST /ingest`` accepts as
``application/x-repro-batch`` — and ``ingest`` replays such a file
through the coalescing fast path.  Non-finite update values are rejected
on every path.  Every command prints a JSON summary to stdout, so the
CLI composes with shell pipelines.
"""

from __future__ import annotations

import argparse
import csv
import json
import math
import sys
from concurrent.futures import FIRST_COMPLETED, ThreadPoolExecutor, wait
from pathlib import Path

from repro.exceptions import ReproError
from repro.sampling.ranks import rank_family_from_name
from repro.sampling.seeds import SeedAssigner
from repro.service.queries import Query, query_value_json
from repro.service.store import SketchStore

__all__ = ["main"]

_DEFAULT_FAMILIES = {"bottom_k": "exp", "poisson": "uniform"}


# ----------------------------------------------------------------------
# Update-stream parsing
# ----------------------------------------------------------------------
def _detect_format(path: Path, explicit: str) -> str:
    if explicit != "auto":
        return explicit
    if path.suffix in (".jsonl", ".ndjson"):
        return "jsonl"
    if path.suffix in (".rbat", ".bin"):
        return "binary"
    return "csv"


def _parse_key(key: str, int_keys: bool) -> object:
    return int(key) if int_keys else key


def _finite(value: float, where: str) -> float:
    # float('nan')/'inf' parse fine and NaN defeats every downstream
    # ordering check, so the readers reject non-finite values up front
    if not math.isfinite(value):
        raise SystemExit(f"{where}: update values must be finite, got {value!r}")
    return value


def _read_updates(path: Path, fmt: str, int_keys: bool):
    """Yield ``(instance, key, value)`` triples from an update file."""
    if fmt == "jsonl":
        with path.open() as handle:
            for line_number, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    row = json.loads(line)
                    triple = (
                        row["instance"],
                        int(row["key"]) if int_keys else row["key"],
                        float(row["value"]),
                    )
                except (KeyError, TypeError, ValueError) as exc:
                    raise SystemExit(
                        f"{path}:{line_number}: bad JSONL update: {exc}"
                    ) from exc
                _finite(triple[2], f"{path}:{line_number}")
                yield triple
        return
    with path.open(newline="") as handle:
        # line_number counts non-empty rows so the optional header is
        # recognised even after leading blank lines, and error messages
        # stay meaningful in files with blank separators
        line_number = 0
        for row in csv.reader(handle):
            if not row:
                continue
            line_number += 1
            if line_number == 1 and row == ["instance", "key", "value"]:
                continue  # optional header
            if len(row) != 3:
                raise SystemExit(
                    f"{path}:{line_number}: expected instance,key,value; "
                    f"got {len(row)} columns"
                )
            try:
                triple = row[0], _parse_key(row[1], int_keys), float(row[2])
            except ValueError as exc:
                raise SystemExit(
                    f"{path}:{line_number}: bad update row: {exc}"
                ) from exc
            _finite(triple[2], f"{path}:{line_number}")
            yield triple


def _batched(iterable, batch_size: int):
    batch = []
    for item in iterable:
        batch.append(item)
        if len(batch) >= batch_size:
            yield batch
            batch = []
    if batch:
        yield batch


# ----------------------------------------------------------------------
# Commands
# ----------------------------------------------------------------------
def _load_store(path: Path) -> SketchStore:
    if path.exists():
        return SketchStore.restore(path)
    return SketchStore()


def _ensure_engine(store: SketchStore, args) -> None:
    if args.name in store:
        return
    ranks = args.ranks or _DEFAULT_FAMILIES[args.kind]
    kwargs = {
        "rank_family": rank_family_from_name(ranks),
        "seed_assigner": SeedAssigner(
            salt=args.salt, coordinated=args.coordinated
        ),
        "n_shards": args.shards,
    }
    if args.kind == "bottom_k":
        store.create(args.name, "bottom_k", k=args.k, **kwargs)
    else:
        if args.threshold is None:
            raise SystemExit(
                "creating a poisson store requires --threshold"
            )
        store.create(
            args.name, "poisson", threshold=args.threshold, **kwargs
        )


def _cmd_ingest(args) -> dict:
    store_path = Path(args.store)
    store = _load_store(store_path)
    _ensure_engine(store, args)
    input_path = Path(args.input)
    fmt = _detect_format(input_path, args.format)
    if fmt == "binary":
        return _ingest_binary(args, store, store_path, input_path)
    updates = _read_updates(input_path, fmt, args.int_keys)
    batches = _batched(updates, args.batch_size)
    n_rows = 0

    def ingest(rows) -> int:
        store.ingest_rows(args.name, rows)
        return len(rows)

    if args.threads > 1:
        # Bounded submission: Executor.map would drain the whole update
        # file into the futures queue; keep only O(threads) batches in
        # flight so memory stays proportional to --batch-size.
        with ThreadPoolExecutor(max_workers=args.threads) as pool:
            in_flight = set()
            for rows in batches:
                in_flight.add(pool.submit(ingest, rows))
                if len(in_flight) >= 2 * args.threads:
                    done, in_flight = wait(
                        in_flight, return_when=FIRST_COMPLETED
                    )
                    n_rows += sum(future.result() for future in done)
            n_rows += sum(future.result() for future in in_flight)
    else:
        n_rows = sum(ingest(rows) for rows in batches)
    store.snapshot(store_path)
    return {
        "command": "ingest",
        "store": str(store_path),
        "name": args.name,
        "rows_ingested": n_rows,
        "version": store.version(args.name),
        "instances": sorted(
            str(label)
            for label in store.engine(args.name).instance_labels
        ),
    }


def _ingest_binary(args, store, store_path: Path, input_path: Path) -> dict:
    """Replay a :mod:`repro.server.wire` batch file into the store.

    The decoded columns go through the coalescing
    :meth:`SketchStore.ingest_batches` fast path — the CLI twin of the
    server's ``application/x-repro-batch`` ingest.
    """
    from repro.server.wire import decode_batches

    batches = decode_batches(input_path.read_bytes())
    n_rows = sum(len(batch.values) for batch in batches)
    store.ingest_batches(args.name, batches)
    store.snapshot(store_path)
    return {
        "command": "ingest",
        "store": str(store_path),
        "name": args.name,
        "format": "binary",
        "batches": len(batches),
        "rows_ingested": n_rows,
        "version": store.version(args.name),
        "instances": sorted(
            str(label)
            for label in store.engine(args.name).instance_labels
        ),
    }


def _cmd_convert(args) -> dict:
    """Re-encode a CSV/JSONL update stream as a binary batch file."""
    from repro.server.wire import encode_batches

    input_path = Path(args.input)
    fmt = _detect_format(input_path, args.format)
    if fmt == "binary":
        raise SystemExit(
            "convert reads CSV/JSONL update streams; "
            f"{input_path} already looks binary"
        )
    updates = _read_updates(input_path, fmt, args.int_keys)
    batches = []
    n_rows = 0
    for rows in _batched(updates, args.batch_size):
        # one wire batch per instance within each window, preserving the
        # stream's batching envelope (the permutation guarantee makes
        # the exact grouping irrelevant to the final sketch state)
        groups: dict[object, tuple[list, list]] = {}
        for instance, key, value in rows:
            columns = groups.setdefault(instance, ([], []))
            columns[0].append(key)
            columns[1].append(value)
        for instance, (keys, values) in groups.items():
            batches.append((instance, keys, values))
            n_rows += len(keys)
    blob = encode_batches(batches)
    out_path = Path(args.out)
    out_path.write_bytes(blob)
    return {
        "command": "convert",
        "input": str(input_path),
        "out": str(out_path),
        "batches": len(batches),
        "rows": n_rows,
        "bytes": len(blob),
    }


def _cmd_snapshot(args) -> dict:
    store_path = Path(args.store)
    store = SketchStore.restore(store_path)
    out_path = Path(args.out) if args.out else store_path
    store.snapshot(out_path)
    return {
        "command": "snapshot",
        "store": str(store_path),
        "out": str(out_path),
        "engines": store.describe(),
    }


def _cmd_merge(args) -> dict:
    store = SketchStore.restore(args.inputs[0])
    for peer in args.inputs[1:]:
        store.merge_snapshot(peer)
    out_path = store.snapshot(args.out)
    return {
        "command": "merge",
        "inputs": [str(path) for path in args.inputs],
        "out": str(out_path),
        "engines": store.describe(),
    }


def _cmd_query(args) -> dict:
    store = SketchStore.restore(args.store)
    instances = [
        _parse_key(label, args.int_instances) for label in args.instances
    ]
    query = Query(
        args.kind,
        tuple(instances),
        variant=args.variant,
        confidence=args.confidence,
    )
    result = store.query(args.name, query)
    payload = {
        "command": "query",
        "store": str(args.store),
        "name": args.name,
        "kind": args.kind,
        "instances": args.instances,
        "version": result.version,
        "value": query_value_json(result.value),
    }
    if result.confidence is not None:
        payload["confidence"] = result.confidence
    return payload


# ----------------------------------------------------------------------
# Serving
# ----------------------------------------------------------------------
def _parse_engine_spec(spec: str) -> dict:
    """Parse one ``--create`` engine spec.

    A spec is comma-separated ``key=value`` pairs, e.g.
    ``name=traffic,kind=poisson,threshold=0.5,salt=7,ranks=uniform``.
    Supported keys: ``name`` (required), ``kind``, ``k``, ``threshold``,
    ``ranks``, ``salt``, ``coordinated``, ``shards``.
    """
    allowed = {
        "name", "kind", "k", "threshold", "ranks", "salt", "coordinated",
        "shards",
    }
    fields: dict[str, str] = {}
    for pair in spec.split(","):
        key, separator, value = pair.partition("=")
        key = key.strip()
        if not separator or key not in allowed:
            raise SystemExit(
                f"bad --create spec {spec!r}: expected comma-separated "
                f"key=value pairs with keys in {sorted(allowed)}"
            )
        fields[key] = value.strip()
    if "name" not in fields:
        raise SystemExit(f"--create spec {spec!r} requires name=<engine>")
    return fields


def _create_from_spec(store: SketchStore, fields: dict) -> None:
    """Create an engine from a parsed ``--create`` spec.

    Delegates to :meth:`SketchStore.create_from_config` — the same
    creation path as the HTTP ``POST /engines`` endpoint — so both
    serving surfaces apply identical defaults.  The spec's ``shards``
    shorthand maps to the canonical ``n_shards`` key.
    """
    config = dict(fields)
    if "shards" in config:
        config["n_shards"] = config.pop("shards")
    store.create_from_config(config)


def _recover_with_wal(args, store_path: Path):
    """Open the WAL, recover snapshot + tail, attach, re-persist.

    Shared boot path of ``serve --wal-dir`` and ``recover``: after it
    returns, ``--store`` holds the recovered state, the replayed tail is
    checkpointed, and the returned store has the (still open) log
    attached.  Corruption raises :class:`WalCorruptionError` out of here
    — the process refuses to serve partial data.
    """
    from repro.wal import WriteAheadLog, recover_store

    wal = WriteAheadLog(
        args.wal_dir,
        fsync=args.fsync,
        fsync_interval=args.fsync_interval,
        segment_bytes=args.wal_segment_bytes,
    )
    try:
        report = recover_store(
            store_path if store_path.exists() else None, wal
        )
        store = report.store
        store.attach_wal(wal)
        if report.replayed_records or not store_path.exists():
            # the snapshot is now behind the recovered state (or absent):
            # persist and checkpoint so a crash loop cannot replay the
            # same tail forever
            store.snapshot_marked(store_path)
    except BaseException:
        wal.close()
        raise
    summary = {
        "wal_dir": str(args.wal_dir),
        "snapshot_engines": report.snapshot_engines,
        "replayed_records": report.replayed_records,
        "replayed_rows": report.replayed_rows,
        "skipped_records": report.skipped_records,
        "last_lsn": report.last_lsn,
        "torn_tail": report.torn_tail,
        "replay_seconds": report.replay_seconds,
    }
    return store, wal, summary


def _cmd_recover(args) -> dict:
    """Offline crash recovery: rebuild ``--store`` from snapshot + WAL."""
    store_path = Path(args.store)
    store, wal, summary = _recover_with_wal(args, store_path)
    wal.close()
    return {
        "command": "recover",
        "store": str(store_path),
        "engines": store.names(),
        **summary,
    }


def _cmd_serve(args) -> dict:
    from repro.server import ServerConfig, SketchServer

    store_path = Path(args.store)
    restored = store_path.exists()
    wal = None
    recovery = None
    if args.wal_dir is not None:
        store, wal, recovery = _recover_with_wal(args, store_path)
        restored = True  # _recover_with_wal persisted the store file
    else:
        store = _load_store(store_path)
    created_engines = []
    for spec in args.create or ():
        fields = _parse_engine_spec(spec)
        if fields["name"] not in store:
            _create_from_spec(store, fields)
            created_engines.append(fields["name"])
    config = ServerConfig(
        host=args.host,
        port=args.port,
        ingest_threads=args.threads,
        workers=args.workers,
        max_pending_batches=args.max_pending_batches,
        max_body_bytes=args.max_body_bytes,
        max_batch_rows=args.max_batch_rows,
        snapshot_path=store_path,
        snapshot_on_shutdown=not args.no_snapshot_on_shutdown,
        slow_request_ms=args.slow_ms,
        log_json=args.log_json,
        series_interval=args.series_interval,
        health_target_p99=args.health_target_p99,
        wal_dir=args.wal_dir,
        wal_fsync=args.fsync,
        wal_fsync_interval=args.fsync_interval,
        wal_segment_bytes=args.wal_segment_bytes,
    )
    # the WAL (when any) is already recovered and attached, so the
    # server adopts it instead of opening its own
    server = SketchServer(store, config)
    if restored and not created_engines:
        # the store state came verbatim from --store; an idle server
        # should not rewrite an identical snapshot at shutdown
        server.mark_clean()

    def on_ready(ready_server) -> None:
        ready = {
            "command": "serve",
            "listening": f"{config.host}:{ready_server.port}",
            "store": str(store_path),
            "engines": store.names(),
        }
        if recovery is not None:
            ready["wal_dir"] = recovery["wal_dir"]
            ready["replayed_records"] = recovery["replayed_records"]
        print(json.dumps(ready, sort_keys=True), flush=True)

    try:
        server.run(on_ready=on_ready)
    finally:
        if wal is not None:
            wal.close()
    result = {
        "command": "serve",
        "shutdown": "clean",
        "store": str(store_path),
        "snapshot_written": (
            str(server.last_shutdown_snapshot)
            if server.last_shutdown_snapshot is not None
            else None
        ),
        "engines": store.names(),
    }
    if recovery is not None:
        result["recovery"] = recovery
    return result


# ----------------------------------------------------------------------
# Argument parsing
# ----------------------------------------------------------------------
def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    commands = parser.add_subparsers(dest="command", required=True)

    ingest = commands.add_parser(
        "ingest",
        help="ingest a CSV/JSONL/binary update stream into a store file",
    )
    ingest.add_argument("--store", required=True,
                        help="store file (created when missing)")
    ingest.add_argument("--name", required=True, help="engine name")
    ingest.add_argument("--input", required=True, help="update file")
    ingest.add_argument("--format",
                        choices=("auto", "csv", "jsonl", "binary"),
                        default="auto",
                        help="input format (auto: by suffix — .jsonl/"
                             ".ndjson JSONL, .rbat/.bin binary batch "
                             "files, else CSV)")
    ingest.add_argument("--kind", choices=("bottom_k", "poisson"),
                        default="bottom_k",
                        help="sketch kind when creating the engine")
    ingest.add_argument("--k", type=int, default=64,
                        help="bottom-k sample size (bottom_k engines)")
    ingest.add_argument("--threshold", type=float, default=None,
                        help="Poisson threshold (poisson engines)")
    ingest.add_argument("--ranks", choices=("pps", "exp", "uniform"),
                        default=None,
                        help="rank family (default: exp for bottom_k, "
                             "uniform for poisson)")
    ingest.add_argument("--salt", type=int, default=0,
                        help="seed-assigner salt")
    ingest.add_argument("--coordinated", action="store_true",
                        help="share per-key seeds across instances")
    ingest.add_argument("--shards", type=int, default=8)
    ingest.add_argument("--batch-size", type=int, default=8192)
    ingest.add_argument("--threads", type=int, default=1,
                        help="concurrent ingest threads")
    ingest.add_argument("--int-keys", action="store_true",
                        help="parse keys as integers")
    ingest.set_defaults(run=_cmd_ingest)

    convert = commands.add_parser(
        "convert",
        help="re-encode a CSV/JSONL update stream as a binary batch "
             "file (the POST /ingest application/x-repro-batch body)",
    )
    convert.add_argument("--input", required=True, help="update file")
    convert.add_argument("--out", required=True,
                         help="binary batch file to write (.rbat)")
    convert.add_argument("--format", choices=("auto", "csv", "jsonl"),
                         default="auto")
    convert.add_argument("--batch-size", type=int, default=8192,
                         help="rows per pipelined wire batch")
    convert.add_argument("--int-keys", action="store_true",
                         help="parse keys as integers (enables the "
                              "flat i64 key column encoding)")
    convert.set_defaults(run=_cmd_convert)

    snapshot = commands.add_parser(
        "snapshot",
        help="re-encode a store file and print its per-engine summary",
    )
    snapshot.add_argument("--store", required=True)
    snapshot.add_argument("--out", default=None,
                          help="write the snapshot here instead of "
                               "overwriting --store")
    snapshot.set_defaults(run=_cmd_snapshot)

    merge = commands.add_parser(
        "merge", help="fan peer snapshot files into one store"
    )
    merge.add_argument("--out", required=True, help="merged store file")
    merge.add_argument("inputs", nargs="+",
                       help="store snapshot files to merge")
    merge.set_defaults(run=_cmd_merge)

    query = commands.add_parser(
        "query", help="run an aggregate query against a store file"
    )
    query.add_argument("--store", required=True)
    query.add_argument("--name", required=True)
    query.add_argument("--kind", required=True,
                       choices=("distinct", "sum", "dominance", "l1"))
    query.add_argument("--instances", required=True, nargs="+",
                       help="instance labels (as ingested)")
    query.add_argument("--variant", choices=("l", "ht"), default="l",
                       help="distinct-count estimator variant")
    query.add_argument("--int-instances", action="store_true",
                       help="parse instance labels as integers")
    query.add_argument("--confidence", action="store_true",
                       help="report estimate quality (cv / ci90) from "
                            "the paper's variance estimators; errors "
                            "for query shapes without one")
    query.set_defaults(run=_cmd_query)

    serve = commands.add_parser(
        "serve",
        help="serve a store file over HTTP (asyncio, stdlib only)",
    )
    serve.add_argument("--store", required=True,
                       help="store file (restored when present, created "
                            "on shutdown otherwise)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8080,
                       help="bind port (0 = ephemeral)")
    serve.add_argument("--create", action="append", metavar="SPEC",
                       help="engine to create when missing, as "
                            "comma-separated key=value pairs "
                            "(name=...,kind=...,k=.../threshold=...,"
                            "ranks=...,salt=...,coordinated=...,"
                            "shards=...); repeatable")
    serve.add_argument("--threads", type=int, default=4,
                       help="ingest/query executor threads")
    serve.add_argument("--workers", type=int, default=0,
                       help="shard-worker processes for the multiprocess "
                            "ingest plane (0 keeps the in-process "
                            "backend); requires --wal-dir for crash "
                            "recovery of in-flight batches")
    serve.add_argument("--max-pending-batches", type=int, default=32,
                       help="per-engine in-flight ingest bound "
                            "(backpressure: 503 beyond it)")
    serve.add_argument("--max-body-bytes", type=int,
                       default=8 * 1024 * 1024)
    serve.add_argument("--max-batch-rows", type=int, default=100_000)
    serve.add_argument("--log-json", action="store_true",
                       help="structured one-JSON-object-per-line logs "
                            "with request-id correlation")
    serve.add_argument("--slow-ms", type=float, default=500.0,
                       help="log requests slower than this many "
                            "milliseconds (0 disables)")
    serve.add_argument("--no-snapshot-on-shutdown", action="store_true",
                       help="do not snapshot dirty engines on shutdown")
    serve.add_argument("--series-interval", type=float, default=1.0,
                       help="seconds between metrics time-series "
                            "samples (/metrics/history; 0 disables)")
    serve.add_argument("--health-target-p99", type=float, default=1.0,
                       help="target request p99 (seconds) the "
                            "route_p99_burn health rule burns against")
    _add_wal_arguments(serve, required=False)
    serve.set_defaults(run=_cmd_serve)

    recover = commands.add_parser(
        "recover",
        help="rebuild --store from its snapshot plus the write-ahead "
             "log tail (crash recovery), checkpointing the log",
    )
    recover.add_argument("--store", required=True,
                         help="store file to rebuild (read when present, "
                              "written with the recovered state)")
    _add_wal_arguments(recover, required=True)
    recover.set_defaults(run=_cmd_recover)

    return parser


def _add_wal_arguments(command, required: bool) -> None:
    """The shared ``serve`` / ``recover`` write-ahead-log flags."""
    command.add_argument("--wal-dir", default=None, required=required,
                         help="write-ahead-log directory"
                              + ("" if required
                                 else " (enables the durability layer)"))
    command.add_argument("--fsync",
                         choices=("always", "interval", "off"),
                         default="interval",
                         help="WAL fsync policy (default: interval)")
    command.add_argument("--fsync-interval", type=float, default=0.05,
                         help="seconds between fsyncs under the "
                              "interval policy")
    command.add_argument("--wal-segment-bytes", type=int,
                         default=64 * 1024 * 1024,
                         help="WAL segment rotation size cap")


def main(argv=None) -> int:
    """Entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    try:
        result = args.run(args)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(json.dumps(result, indent=1, sort_keys=True))
    return 0
