"""``python -m repro.service`` — the sketch-service CLI."""

from repro.service.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
