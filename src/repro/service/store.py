"""Persistent registry of named sketch engines with concurrent ingest.

:class:`SketchStore` is the long-lived state of the serving layer: a
registry of named :class:`~repro.streaming.StreamEngine` instances with

* **thread-safe concurrent ingest** — per-(instance, shard) locking over
  the engine's sharded structure, so writer threads touching different
  shards proceed in parallel while updates to one shard serialize.
  Because sketch state is insensitive to update order (the streaming
  permutation guarantee), concurrent ingest of pre-aggregated updates
  produces sketches identical to serial ingest;
* **monotone version counters** — every completed ingest bumps the named
  engine's version, the invalidation signal for the query-result cache of
  :class:`repro.service.queries.QueryPlanner`;
* **durability** — :meth:`snapshot` writes the whole store through the
  versioned binary codec and :meth:`restore` brings it back,
  state-identical;
* **distributed-style fan-in** — :meth:`merge_snapshot` folds a peer's
  snapshot file into this store shard-by-shard via the associative merge
  algebra of :mod:`repro.streaming.merge`.

Reads (queries, snapshots, merges) are quiescent: they wait for in-flight
ingests to drain and briefly block new ones, so every exported state and
every version observed is a consistent point-in-time view.

Every ingest surface — live API calls, binary batch groups, recovery
replay — funnels through one validated call shape:
:class:`IngestRequest` via :meth:`SketchStore.submit`.  The legacy
``ingest`` / ``ingest_batches`` / ``replay_batch`` methods survive as
thin deprecated shims over it.

With :meth:`SketchStore.start_workers` the store swaps its in-process
threaded execution for a multiprocess shard-worker plane
(:mod:`repro.cluster`): batches are wire-encoded once, appended to the
WAL *before* dispatch (unchanged kill-9 recovery semantics), and
broadcast to N worker processes that each apply the rows of their own
shard group.  Quiescent reads first *fold* the workers' accumulated
deltas back into the parent engine through the associative sketch
merge — bit-exact with single-process ingest, because every row is
owned by exactly one worker.  A crashed worker is respawned and
replayed from the WAL tail, so acknowledged batches survive worker
``SIGKILL``.
"""

from __future__ import annotations

import os
import threading
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field

import numpy as np
from contextlib import contextmanager
from pathlib import Path
from typing import TYPE_CHECKING

from repro.exceptions import (
    InvalidParameterError,
    SketchCodecError,
    UnknownStoreError,
)
from repro.obs import span
from repro.sampling.ranks import RankFamily, rank_family_from_name
from repro.sampling.seeds import SeedAssigner
from repro.service import codec
from repro.streaming.engine import StreamEngine

if TYPE_CHECKING:
    from repro.service.queries import QueryPlanner

__all__ = ["IngestRequest", "SketchStore"]


class _StoreEntry:
    """A named engine plus its concurrency state."""

    __slots__ = (
        "engine",
        "version",
        "cond",
        "in_flight",
        "shard_locks",
        "synced_version",
    )

    def __init__(self, engine: StreamEngine, version: int = 0) -> None:
        self.engine = engine
        self.version = int(version)
        #: guards version / in_flight / shard-lock creation; readers wait
        #: on it for quiescence.  Reentrant so pool-mode crash healing
        #: can re-touch an entry from inside a quiescent read.
        self.cond = threading.Condition(threading.RLock())
        self.in_flight = 0
        self.shard_locks: dict[tuple, threading.Lock] = {}
        #: multiprocess backend only: the highest version whose effects
        #: are folded into the *parent* engine.  Batches in
        #: ``(synced_version, version]`` live as worker deltas (and WAL
        #: records — the crash-replay window for a respawned worker).
        self.synced_version = int(version)


@dataclass(frozen=True)
class IngestRequest:
    """One validated ingest call shape shared by every execution path.

    The thread backend, the multiprocess shard-worker backend, and
    recovery replay all consume this via :meth:`SketchStore.submit`:

    ``engine``
        Target engine name.
    ``batches``
        ``(instance, keys, values)`` column triples (one or many;
        :class:`repro.server.wire` ``WireBatch`` tuples work as-is).
    ``source``
        Informational origin tag (``"api"``, ``"replay"``, ...) carried
        into trace spans.
    ``version``
        ``None`` for live ingest (the store assigns the next version);
        an explicit version turns the submit into a *replay* of a
        logged batch — quiescent, version-forced, exactly one batch.
    ``wal_bypass``
        Skip the write-ahead-log append for this submit (for callers
        replaying batches that already live in the attached log).
    ``coalesce``
        Merge batches of the same instance into one column before
        ingesting (safe under the streaming permutation guarantee, and
        what the binary ingest fast path wants); disable to force one
        ingest per batch.
    """

    engine: str
    batches: tuple = field(default=())
    source: str = "api"
    version: int | None = None
    wal_bypass: bool = False
    coalesce: bool = True

    def __post_init__(self) -> None:
        if not isinstance(self.engine, str) or not self.engine:
            raise InvalidParameterError(
                "IngestRequest.engine must be a non-empty string, got "
                f"{self.engine!r}"
            )
        if not isinstance(self.source, str) or not self.source:
            raise InvalidParameterError(
                "IngestRequest.source must be a non-empty string, got "
                f"{self.source!r}"
            )
        normalized = tuple(tuple(batch) for batch in self.batches)
        for batch in normalized:
            if len(batch) != 3:
                raise InvalidParameterError(
                    "each IngestRequest batch must be an (instance, "
                    f"keys, values) triple, got {len(batch)} fields"
                )
        object.__setattr__(self, "batches", normalized)
        if self.version is not None:
            if len(normalized) != 1:
                raise InvalidParameterError(
                    "a version-forced (replay) IngestRequest carries "
                    f"exactly one batch, got {len(normalized)}"
                )


def _coalesce_batches(
    batches: Iterable[tuple[object, Sequence[object], Sequence[float]]],
) -> list[tuple[object, object, object]]:
    """Merge column batches of the same instance into one column each.

    Safe under the streaming permutation guarantee — sketch state does
    not depend on how a stream is batched — and it amortises per-batch
    engine planning over the whole group.
    """
    groups: dict[object, tuple[list, list]] = {}
    for instance, keys, values in batches:
        columns = groups.get(instance)
        if columns is None:
            columns = groups[instance] = ([], [])
        columns[0].append(keys)
        columns[1].append(values)
    coalesced: list[tuple[object, object, object]] = []
    for instance, (key_columns, value_columns) in groups.items():
        if len(key_columns) == 1:
            keys, values = key_columns[0], value_columns[0]
        elif all(
            isinstance(column, np.ndarray) for column in key_columns
        ):
            keys = np.concatenate(key_columns)
            values = np.concatenate(
                [np.asarray(col, dtype=float) for col in value_columns]
            )
        else:
            keys = [key for column in key_columns for key in column]
            values = np.concatenate(
                [np.asarray(col, dtype=float) for col in value_columns]
            )
        coalesced.append((instance, keys, values))
    return coalesced


def _checked_columns(keys: Sequence[object], values: object) -> np.ndarray:
    """Validate one column batch ahead of multiprocess dispatch.

    The thread backend validates inside ``ingest_jobs`` *before* any
    state changes; the dispatch path acknowledges before workers apply,
    so the same rejections must happen parent-side first.
    """
    column = np.asarray(values, dtype=float)
    if column.ndim != 1 or column.shape[0] != len(keys):
        raise InvalidParameterError(
            f"keys ({len(keys)}) and values (shape {column.shape}) must "
            "be equal-length 1-D columns"
        )
    if column.size:
        if not np.all(np.isfinite(column)):
            raise InvalidParameterError(
                "update values must be finite"
            )
        if bool((column < 0).any()):
            raise InvalidParameterError(
                "update weights must be nonnegative"
            )
    return column


class SketchStore:
    """Named, versioned, concurrently ingestible sketch engines.

    Examples
    --------
    >>> from repro.sampling.seeds import SeedAssigner
    >>> store = SketchStore()
    >>> _ = store.create("traffic", kind="poisson", threshold=0.5,
    ...                  seed_assigner=SeedAssigner(salt=7))
    >>> store.ingest("traffic", "monday", ["alice", "bob"], [3.0, 1.0])
    1
    >>> store.version("traffic")
    1
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._entries: dict[str, _StoreEntry] = {}
        self._planner: "QueryPlanner | None" = None
        #: duck-typed repro.wal.WriteAheadLog (kept untyped to avoid a
        #: service -> wal -> server import cycle)
        self._wal = None
        #: duck-typed repro.cluster.ShardWorkerPool; when set, ingest
        #: dispatches to worker processes instead of running in-process
        self._pool = None

    # ------------------------------------------------------------------
    # Durability log
    # ------------------------------------------------------------------
    @property
    def wal(self):
        """The attached :class:`repro.wal.WriteAheadLog`, or ``None``."""
        return self._wal

    def attach_wal(self, wal) -> None:
        """Attach a write-ahead log: from now on every ingest batch and
        engine-state change is appended *before* it is applied.

        The log records batches in the :mod:`repro.server.wire` columnar
        format, so a WAL-attached store only accepts wire-encodable keys
        (str / int64 / the tagged instance labels) and finite values —
        the same contract as the binary ingest endpoint.  Attach the log
        *after* recovery replay and before serving traffic; re-attaching
        is an error.
        """
        if wal is None:
            raise InvalidParameterError("cannot attach wal=None")
        if self._wal is not None:
            raise InvalidParameterError(
                "a write-ahead log is already attached to this store"
            )
        self._wal = wal

    # ------------------------------------------------------------------
    # Multiprocess shard workers
    # ------------------------------------------------------------------
    @property
    def has_workers(self) -> bool:
        """Whether the multiprocess shard-worker backend is active."""
        return self._pool is not None

    def start_workers(
        self,
        n_workers: int,
        *,
        transport: str = "shm",
        ring_bytes: int | None = None,
        mp_method: str | None = None,
    ) -> None:
        """Swap ingest execution onto ``n_workers`` shard processes.

        Each worker owns the shards ``s % n_workers == worker_id`` of
        every engine and starts from an *empty* configured clone (the
        parent keeps all pre-existing state); quiescent reads fold the
        workers' deltas back through the associative merge, bit-exact
        with single-process ingest.  Call before serving concurrent
        traffic; engines registered later join the pool automatically.
        Worker-mode ingest requires wire-encodable keys (the binary
        ingest contract) and engines with a recorded configuration.
        """
        from repro.cluster import DEFAULT_RING_BYTES, ShardWorkerPool

        if self._pool is not None:
            raise InvalidParameterError(
                "shard workers are already running for this store"
            )
        # fail fast (before any process exists) on template-less engines
        templates = {
            name: self._engine_template(name, self._entry(name).engine)
            for name in self.names()
        }
        pool = ShardWorkerPool(
            n_workers,
            transport=transport,
            ring_bytes=(
                DEFAULT_RING_BYTES if ring_bytes is None else ring_bytes
            ),
            mp_method=mp_method,
        )
        pool.start()
        try:
            for name, blob in templates.items():
                pool.register_engine(name, blob)
        except Exception:
            pool.stop()
            raise
        # all existing state lives in the parent: the fold frontier is
        # exactly the current version of every engine
        for name in self.names():
            with self._read(name) as entry:
                entry.synced_version = entry.version
        self._pool = pool

    def stop_workers(self) -> None:
        """Fold outstanding worker deltas, then stop every worker.

        The pool is torn down even when the final fold fails (crashed
        workers without a WAL to heal from): the exception still
        propagates, but no orphaned worker processes linger.
        """
        pool = self._pool
        if pool is None:
            return
        try:
            with pool.lock:
                try:
                    for name, entry in list(self._entries.items()):
                        self._sync_one(name, entry)
                finally:
                    self._pool = None
        finally:
            pool.stop()

    def worker_probes(self) -> list[dict]:
        """Per-worker observability rows (empty without workers)."""
        pool = self._pool
        if pool is None:
            return []
        return pool.probes()

    @staticmethod
    def _engine_template(name: str, engine: StreamEngine) -> bytes:
        """Empty configured clone of ``engine`` — the worker reset
        template (workers accumulate pure deltas on top of it)."""
        config = engine.sketch_config
        if not config:
            raise InvalidParameterError(
                f"engine {name!r} was built from a custom factory and "
                "carries no recorded configuration; shard workers need "
                "one to build their empty reset template"
            )
        kind = config.get("kind")
        if kind == "bottom_k":
            template = StreamEngine.bottom_k(
                k=config["k"],
                rank_family=config.get("rank_family"),
                seed_assigner=config.get("seed_assigner"),
                n_shards=engine.n_shards,
            )
        elif kind == "poisson":
            template = StreamEngine.poisson(
                threshold=config["threshold"],
                rank_family=config.get("rank_family"),
                seed_assigner=config.get("seed_assigner"),
                n_shards=engine.n_shards,
            )
        else:
            raise InvalidParameterError(
                f"engine {name!r} has unknown sketch kind {kind!r}"
            )
        return codec.to_bytes(template)

    def _sync_one(self, name: str, entry: _StoreEntry) -> None:
        """Fold worker deltas for ``name`` into the parent engine.

        Caller holds ``pool.lock``, so no dispatch can interleave and
        the fold frontier lands exactly on the current version.  Crashed
        workers are healed (respawn + WAL-tail replay) and the collect
        retried; deltas a crash-interrupted collect already reset out of
        live workers are preserved by the pool and folded here too.
        """
        from repro.cluster import WorkerCrashError

        pool = self._pool
        with entry.cond:
            if entry.synced_version == entry.version:
                return
        for _ in range(8):
            try:
                states = pool.collect(name)
                break
            except WorkerCrashError:
                self._heal_workers()
        else:
            raise RuntimeError(
                f"shard workers kept crashing while folding {name!r}; "
                "giving up after 8 heal attempts"
            )
        with entry.cond:
            with span(
                "store.fold", engine=name, deltas=len(states)
            ):
                for blob in states:
                    # ownership-transferring fold: untouched shards adopt
                    # the decoded delta sketch bit-exactly
                    entry.engine.fold_delta(codec.from_bytes(blob))
            entry.synced_version = entry.version
            entry.shard_locks.clear()

    def _heal_workers(self) -> None:
        """Respawn dead workers and replay their un-folded WAL tail.

        Caller holds ``pool.lock``.  A respawned worker restarts from
        empty templates, so every batch in ``(synced_version, version]``
        of every engine — the delta the dead incarnation held — is
        re-dispatched to it from the log.  Those windows never contain
        engine records: ``adopt``/``merge_store`` advance the fold
        frontier to the version they write.
        """
        from repro.wal.log import RECORD_BATCH

        pool = self._pool
        dead = pool.dead_workers()
        if not dead:
            return
        if self._wal is None:
            raise RuntimeError(
                f"shard worker(s) {dead} died with no write-ahead log "
                "attached; their un-folded deltas are unrecoverable — "
                "serve with a WAL to make worker crashes survivable"
            )
        windows: dict[str, tuple[int, int]] = {}
        for name, entry in list(self._entries.items()):
            with entry.cond:
                if entry.synced_version < entry.version:
                    windows[name] = (entry.synced_version, entry.version)
        records = []
        if windows:
            records, _ = self._wal.read_all()
        with span("store.heal_workers", dead=len(dead)) as attrs:
            replayed = 0
            for index in dead:
                pool.respawn(index)
                for record in records:
                    if record.kind != RECORD_BATCH:
                        continue
                    window = windows.get(record.name)
                    if window is None:
                        continue
                    low, high = window
                    if low < record.version <= high:
                        pool.dispatch_to(index, record.name, record.payload)
                        replayed += 1
            attrs["replayed_batches"] = replayed

    # ------------------------------------------------------------------
    # Registry
    # ------------------------------------------------------------------
    def create(
        self,
        name: str,
        kind: str = "bottom_k",
        *,
        k: int | None = None,
        threshold: float | None = None,
        rank_family: RankFamily | None = None,
        seed_assigner: SeedAssigner | None = None,
        n_shards: int = 8,
    ) -> StreamEngine:
        """Create, register and return a named engine."""
        if kind == "bottom_k":
            if k is None:
                raise InvalidParameterError(
                    "a bottom_k store requires the sample size k"
                )
            if threshold is not None:
                raise InvalidParameterError(
                    "threshold applies to poisson stores only"
                )
            engine = StreamEngine.bottom_k(
                k=k,
                rank_family=rank_family,
                seed_assigner=seed_assigner,
                n_shards=n_shards,
            )
        elif kind == "poisson":
            if threshold is None:
                raise InvalidParameterError(
                    "a poisson store requires a threshold"
                )
            if k is not None:
                raise InvalidParameterError(
                    "k applies to bottom_k stores only"
                )
            engine = StreamEngine.poisson(
                threshold=threshold,
                rank_family=rank_family,
                seed_assigner=seed_assigner,
                n_shards=n_shards,
            )
        else:
            raise InvalidParameterError(
                f"unknown sketch kind {kind!r}; use 'bottom_k' or 'poisson'"
            )
        self.register(name, engine)
        return engine

    def create_from_config(self, config) -> StreamEngine:
        """Create a named engine from a flat, JSON-style configuration.

        The shared creation path of the serving surfaces — HTTP ``POST
        /engines`` bodies and the serve CLI's ``--create`` specs — so
        both apply identical defaults.  Keys: ``name`` (required),
        ``kind`` (default ``bottom_k``), ``k`` (default 64),
        ``threshold`` (required for poisson), ``ranks`` (rank-family
        name; the family default when omitted), ``salt`` (default 0),
        ``coordinated`` (bool or "1"/"true"/"yes" string), ``n_shards``
        (default 8).  Numeric values may arrive as strings.
        """
        allowed = {
            "name", "kind", "k", "threshold", "ranks", "salt",
            "coordinated", "n_shards",
        }
        unknown = sorted(set(config) - allowed)
        if unknown:
            raise InvalidParameterError(
                f"unknown engine config keys {unknown}; "
                f"allowed: {sorted(allowed)}"
            )
        name = config.get("name")
        if not isinstance(name, str) or not name:
            raise InvalidParameterError(
                f"engine config requires a string 'name', got {name!r}"
            )
        kind = config.get("kind", "bottom_k")
        ranks = config.get("ranks")
        coordinated = config.get("coordinated", False)
        if isinstance(coordinated, str):
            coordinated = coordinated.lower() in ("1", "true", "yes")
        kwargs = {
            "rank_family": (
                rank_family_from_name(ranks) if ranks is not None else None
            ),
            "seed_assigner": SeedAssigner(
                salt=int(config.get("salt", 0)),
                coordinated=bool(coordinated),
            ),
            "n_shards": int(config.get("n_shards", 8)),
        }
        if kind == "bottom_k":
            kwargs["k"] = int(config.get("k", 64))
        elif kind == "poisson":
            if config.get("threshold") is None:
                raise InvalidParameterError(
                    f"a poisson engine requires a 'threshold' "
                    f"(engine {name!r})"
                )
            kwargs["threshold"] = float(config["threshold"])
        # unknown kinds fall through to create(), which rejects them
        return self.create(name, kind, **kwargs)

    def register(
        self, name: str, engine: StreamEngine, version: int = 0
    ) -> None:
        """Register an existing engine under ``name``.

        Engines built from custom factories are accepted for in-memory
        use, but :meth:`snapshot` and :meth:`merge_snapshot` require the
        recorded configuration of ``StreamEngine.bottom_k`` /
        ``StreamEngine.poisson`` engines.
        """
        if not isinstance(name, str) or not name:
            raise InvalidParameterError(
                f"store names must be non-empty strings, got {name!r}"
            )
        if not isinstance(engine, StreamEngine):
            raise InvalidParameterError(
                f"expected a StreamEngine, got {type(engine).__name__}"
            )
        pool = self._pool
        template = (
            self._engine_template(name, engine) if pool is not None else None
        )
        with self._lock:
            if name in self._entries:
                raise InvalidParameterError(
                    f"store {name!r} already exists"
                )
            if self._wal is not None:
                self._wal.append_engine(
                    name, int(version), codec.to_bytes(engine)
                )
            self._entries[name] = _StoreEntry(engine, version)
            if template is not None:
                from repro.cluster import WorkerCrashError

                with pool.lock:
                    try:
                        pool.register_engine(name, template)
                    except WorkerCrashError:
                        # respawn re-sends every template, this one
                        # included
                        self._heal_workers()

    def adopt(
        self, name: str, engine: StreamEngine, version: int = 0
    ) -> None:
        """Register ``name`` or replace its engine wholesale.

        The replication / recovery counterpart of :meth:`register`: a
        follower applying an engine-state record must overwrite whatever
        it currently holds.  Replacement waits for in-flight ingests to
        drain, keeps the version monotone (``max(local, version)``), and
        logs an engine record when a WAL is attached.
        """
        if name not in self:
            self.register(name, engine, version=version)
            return
        if not isinstance(engine, StreamEngine):
            raise InvalidParameterError(
                f"expected a StreamEngine, got {type(engine).__name__}"
            )
        with self._read(name) as entry:
            new_version = max(entry.version, int(version))
            if self._wal is not None:
                self._wal.append_engine(
                    name, new_version, codec.to_bytes(engine)
                )
            entry.engine = engine
            entry.version = new_version
            entry.synced_version = new_version
            entry.shard_locks.clear()
            pool = self._pool
            if pool is not None:
                # the read already folded and reset the workers; replace
                # their template so future deltas match the new config
                from repro.cluster import WorkerCrashError

                try:
                    pool.register_engine(
                        name, self._engine_template(name, engine)
                    )
                except WorkerCrashError:
                    self._heal_workers()

    def names(self) -> list[str]:
        """Registered engine names, in registration order."""
        with self._lock:
            return list(self._entries)

    def __contains__(self, name: object) -> bool:
        with self._lock:
            return name in self._entries

    def _entry(self, name: str) -> _StoreEntry:
        with self._lock:
            try:
                return self._entries[name]
            except KeyError:
                raise UnknownStoreError(
                    f"unknown store {name!r}; registered: "
                    f"{list(self._entries)}"
                ) from None

    def engine(self, name: str, *, sync: bool = False) -> StreamEngine:
        """The live engine registered under ``name`` (not a copy).

        With shard workers running the parent's engine object lags the
        dispatched batches until a quiescent read folds the workers'
        deltas in; ``sync=True`` forces that fold first.  The default
        stays cheap (no worker round-trip) for observability probes
        that tolerate staleness — query paths all read through
        :meth:`snapshot_view` / :meth:`merged_sketch`, which sync.
        """
        if sync:
            with self._read(name) as entry:
                return entry.engine
        return self._entry(name).engine

    def version(self, name: str) -> int:
        """Monotone ingest counter of ``name`` (0 for a fresh engine)."""
        entry = self._entry(name)
        with entry.cond:
            return entry.version

    def version_hint(self, name: str) -> int:
        """Lock-free read of :meth:`version` — possibly a moment stale.

        :meth:`version` waits on the per-engine condition lock, which an
        in-flight ingest holds while planning a whole batch; serving
        event loops that must never block (the HTTP server's cache
        probe) read the counter without it.  Under the GIL the read is
        atomic, and a stale value only makes a cache probe miss or
        return a result correctly labelled with the older version.
        """
        return self._entry(name).version

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------
    def submit(self, request: IngestRequest) -> int:
        """Run one :class:`IngestRequest` — the single ingest choke point.

        Every surface funnels here: per-batch API ingest, grouped binary
        batches, row triples (via the thin legacy shims), and recovery
        replay (``request.version`` set).  Dispatches to the thread
        backend or the multiprocess shard workers, whichever is active.
        Returns the engine version after the request (the current
        version when ``request.batches`` is empty).
        """
        if not isinstance(request, IngestRequest):
            raise InvalidParameterError(
                f"submit() takes an IngestRequest, got "
                f"{type(request).__name__}"
            )
        if request.version is not None:
            instance, keys, values = request.batches[0]
            return self._replay(request, instance, keys, values)
        entry = self._entry(request.engine)
        triples = (
            _coalesce_batches(request.batches)
            if request.coalesce
            else list(request.batches)
        )
        version: int | None = None
        for instance, keys, values in triples:
            version = self._ingest_one(
                entry, request, instance, keys, values
            )
        if version is None:
            with entry.cond:
                return entry.version
        return version

    def _ingest_one(
        self,
        entry: _StoreEntry,
        request: IngestRequest,
        instance: object,
        keys: Sequence[object],
        values,
    ) -> int:
        """One live batch through whichever backend is active.

        Thread backend: safe to call from many threads at once — batch
        planning (hashing, sharding, sketch creation) is serialized on
        the engine, while the per-shard sketch updates run under
        per-(instance, shard) locks so different shards make progress in
        parallel.  Returns the new version.
        """
        name = request.engine
        if self._pool is not None:
            return self._dispatch_one(entry, request, instance, keys, values)
        with entry.cond:
            jobs = entry.engine.ingest_jobs(instance, keys, values)
            if self._wal is not None and not request.wal_bypass:
                # append-before-apply: the version this batch will carry
                # once applied is the idempotence key recovery replays
                # against.  version + in_flight is invariant under
                # completions, so planned versions are the exact sequence
                # the quiescent (snapshot-visible) counter runs through.
                self._wal.append_batch(
                    name,
                    entry.version + entry.in_flight + 1,
                    instance,
                    keys,
                    values,
                )
            for job in jobs:
                entry.shard_locks.setdefault(
                    (instance, job.shard), threading.Lock()
                )
            entry.in_flight += 1
        try:
            with span("store.ingest", engine=name, shards=len(jobs)):
                for job in jobs:
                    with entry.shard_locks[(instance, job.shard)]:
                        StreamEngine.run_job(job)
        finally:
            with entry.cond:
                entry.in_flight -= 1
                entry.version += 1
                version = entry.version
                entry.cond.notify_all()
        return version

    def _dispatch_one(
        self,
        entry: _StoreEntry,
        request: IngestRequest,
        instance: object,
        keys: Sequence[object],
        values,
    ) -> int:
        """Wire-encode one batch and broadcast it to the shard workers.

        Append-before-dispatch: with a WAL attached the batch is logged
        (byte-identical to the record the thread backend writes) before
        any worker sees it, so a parent crash after the ack replays it
        on restart and a worker crash replays the un-folded tail to the
        respawned slot.  The version bump lands *before* crash healing
        so the healed worker's replay window includes this batch.
        """
        from repro.cluster import WorkerCrashError
        from repro.server.wire import encode_batches

        name = request.engine
        pool = self._pool
        # workers apply after the ack, so the rejections ingest_jobs
        # would have raised must happen parent-side first
        column = _checked_columns(keys, values)
        blob = encode_batches([(instance, keys, column)])
        with pool.lock:
            with entry.cond:
                version = entry.version + 1
                if self._wal is not None and not request.wal_bypass:
                    self._wal.append_batch_blob(name, version, blob)
            crashed = False
            with span(
                "store.dispatch", engine=name, rows=int(column.shape[0])
            ):
                try:
                    pool.dispatch(name, blob)
                except WorkerCrashError:
                    crashed = True
            with entry.cond:
                entry.version = version
                entry.cond.notify_all()
            if crashed:
                self._heal_workers()
        return version

    def _replay(
        self,
        request: IngestRequest,
        instance: object,
        keys: Sequence[object],
        values,
    ) -> int:
        """Apply a logged ingest batch, forcing its recorded version.

        Recovery and replica catch-up re-apply batches that already have
        a version assigned by the origin store; applying them as live
        ingest would re-number them.  Runs quiescently (no concurrent
        ingest can interleave), bumps the version to the record's value,
        and — when this store has its *own* WAL attached (a durable
        follower) and the request does not bypass it — logs the batch
        before applying, same as a live ingest.  Returns the new
        version.
        """
        name = request.engine
        entry = self._entry(name)
        version = int(request.version)  # type: ignore[arg-type]
        pool = self._pool
        if pool is not None:
            from repro.cluster import WorkerCrashError
            from repro.server.wire import encode_batches

            column = _checked_columns(keys, values)
            blob = encode_batches([(instance, keys, column)])
            with pool.lock:
                with entry.cond:
                    if version <= entry.version:
                        raise InvalidParameterError(
                            f"replayed batch for {name!r} carries version "
                            f"{version} but the store is already at "
                            f"{entry.version}; skip-checks belong to the "
                            "caller"
                        )
                    if self._wal is not None and not request.wal_bypass:
                        self._wal.append_batch_blob(name, version, blob)
                crashed = False
                with span("store.replay", engine=name, rows=len(column)):
                    try:
                        pool.dispatch(name, blob)
                    except WorkerCrashError:
                        crashed = True
                with entry.cond:
                    entry.version = version
                    entry.cond.notify_all()
                if crashed:
                    self._heal_workers()
                return version
        with entry.cond:
            while entry.in_flight:
                entry.cond.wait()
            if version <= entry.version:
                raise InvalidParameterError(
                    f"replayed batch for {name!r} carries version "
                    f"{version} but the store is already at "
                    f"{entry.version}; skip-checks belong to the caller"
                )
            if self._wal is not None and not request.wal_bypass:
                self._wal.append_batch(name, version, instance, keys, values)
            jobs = entry.engine.ingest_jobs(instance, keys, values)
            with span("store.replay", engine=name, shards=len(jobs)):
                for job in jobs:
                    StreamEngine.run_job(job)
            entry.version = version
            entry.cond.notify_all()
            return entry.version

    # -- deprecated shims (pre-IngestRequest surface) -------------------
    def ingest(
        self, name: str, instance: object, keys: Sequence[object], values
    ) -> int:
        """Ingest one batch of ``(key, value)`` updates for ``instance``.

        .. deprecated:: use :meth:`submit` with an
           :class:`IngestRequest`; this shim forwards to it unchanged.
        """
        return self.submit(
            IngestRequest(
                engine=name,
                batches=((instance, keys, values),),
                coalesce=False,
            )
        )

    def replay_batch(
        self,
        name: str,
        instance: object,
        keys: Sequence[object],
        values,
        version: int,
    ) -> int:
        """Apply a logged ingest batch, forcing its recorded version.

        .. deprecated:: use :meth:`submit` with a version-forced
           :class:`IngestRequest`; this shim forwards to it unchanged.
        """
        return self.submit(
            IngestRequest(
                engine=name,
                batches=((instance, keys, values),),
                source="replay",
                version=int(version),
            )
        )

    def ingest_rows(
        self, name: str, rows: Iterable[tuple[object, object, float]]
    ) -> int:
        """Ingest ``(instance, key, value)`` triples, grouped by instance.

        Returns the version after the last batch (the current version if
        ``rows`` is empty).

        .. deprecated:: use :meth:`submit` with an
           :class:`IngestRequest`; this shim forwards to it unchanged.
        """
        batches = tuple(
            (instance, [key], [float(value)])
            for instance, key, value in rows
        )
        return self.submit(
            IngestRequest(engine=name, batches=batches, source="rows")
        )

    def ingest_batches(
        self,
        name: str,
        batches: Iterable[tuple[object, Sequence[object], Sequence[float]]],
    ) -> int:
        """Ingest ``(instance, keys, values)`` column batches, coalescing
        batches of the same instance into one large column first.

        This is the server half of the binary ingest fast path: a
        pipelined :mod:`repro.server.wire` body decodes into many small
        batches, and per-batch ingest cost (engine planning, lock
        round-trips, chunk startup) would dominate.  The streaming
        permutation guarantee makes coalescing safe — sketch state does
        not depend on how a stream is batched — so the coalesced ingest
        is state-identical to ingesting every batch separately.  Returns
        the version after the last instance (the current version if
        ``batches`` is empty).

        .. deprecated:: use :meth:`submit` with an
           :class:`IngestRequest`; this shim forwards to it unchanged.
        """
        return self.submit(
            IngestRequest(
                engine=name, batches=tuple(batches), source="batches"
            )
        )

    # ------------------------------------------------------------------
    # Quiescent reads
    # ------------------------------------------------------------------
    @contextmanager
    def _read(self, name: str):
        """Yield the entry once no ingest is in flight, blocking new
        ingests for the duration (they queue on the condition lock).

        With shard workers attached, first folds outstanding worker
        deltas into the parent engine — under the pool lock, so no
        dispatch can interleave: the yielded engine is then the exact
        serial-ingest state at the yielded version.
        """
        entry = self._entry(name)
        pool = self._pool
        if pool is not None:
            with pool.lock:
                if self._pool is pool:  # raced a stop_workers()
                    self._sync_one(name, entry)
                with entry.cond:
                    while entry.in_flight:
                        entry.cond.wait()
                    yield entry
            return
        with entry.cond:
            while entry.in_flight:
                entry.cond.wait()
            yield entry

    def snapshot_view(
        self, name: str, instances: Sequence[object]
    ) -> tuple[int, list]:
        """A consistent ``(version, merged sketches)`` view of ``name``."""
        with self._read(name) as entry:
            return (
                entry.version,
                [entry.engine.sketch(label) for label in instances],
            )

    def merged_sketch(self, name: str, instance: object):
        """The cross-shard merged sketch of one instance."""
        with self._read(name) as entry:
            return entry.engine.sketch(instance)

    def sample(self, name: str, instance: object):
        """Offline-sample snapshot of one instance."""
        return self.merged_sketch(name, instance).to_sample()

    def describe(self) -> dict:
        """Human/JSON-friendly summary of every registered engine."""
        summary: dict[str, dict] = {}
        for name in self.names():
            with self._read(name) as entry:
                engine = entry.engine
                config = engine.sketch_config or {}
                summary[name] = {
                    "kind": config.get("kind", "custom"),
                    "version": entry.version,
                    "n_updates": engine.n_updates,
                    "n_shards": engine.n_shards,
                    "instances": {
                        str(label): len(engine.sketch(label))
                        for label in engine.instance_labels
                    },
                }
        return summary

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def snapshot(self, path) -> Path:
        """Write the whole store to ``path`` via the binary codec."""
        return self.snapshot_marked(path)[0]

    def snapshot_marked(
        self, path, *, checkpoint_wal: bool = True
    ) -> tuple[Path, dict]:
        """:meth:`snapshot` plus the exact per-engine marks written.

        Returns ``(path, marks)`` where ``marks[name]`` is the
        ``(version, change_tick)`` pair captured *inside* each engine's
        quiescent read — i.e. exactly the state that landed in the file.
        Serving layers use the marks for dirty tracking: an ingest that
        completes while a later engine is still being serialized must
        not be considered snapshotted.

        With a WAL attached, a successful snapshot checkpoints the log:
        segments whose records all predate the snapshot are deleted.
        The cutoff LSN is captured *before* any engine is serialized, so
        a batch racing the snapshot is always either in the file or in
        the surviving tail — replay's version checks make the overlap
        harmless.  ``checkpoint_wal=False`` keeps the log intact (ad-hoc
        snapshot copies must not weaken the primary's recovery story).
        """
        items = []
        marks: dict[str, tuple[int, int]] = {}
        with span("store.snapshot") as attrs:
            cutoff = self._wal.last_lsn if self._wal is not None else None
            for name in self.names():
                with self._read(name) as entry:
                    items.append(
                        (name, entry.version, codec.to_bytes(entry.engine))
                    )
                    marks[name] = (entry.version, entry.engine.change_tick)
            path = Path(path)
            # atomic replace: a crash mid-write must never truncate the
            # only copy of the store (the serve CLI snapshots onto
            # --store itself)
            scratch = path.with_name(path.name + ".tmp")
            blob = codec.store_to_bytes(items)
            scratch.write_bytes(blob)
            os.replace(scratch, path)
            attrs["engines"] = len(items)
            attrs["bytes"] = len(blob)
            if checkpoint_wal and cutoff is not None:
                attrs["wal_segments_dropped"] = self._wal.checkpoint(cutoff)
        return path, marks

    def to_bytes(self) -> bytes:
        """Serialize the whole store to one snapshot blob, no file.

        Same format as :meth:`snapshot` (readable by
        :func:`repro.service.codec.store_from_bytes`); used by the
        ``/replicate`` full-delta mode when the WAL tail a follower asks
        for was already checkpointed away.
        """
        items = []
        for name in self.names():
            with self._read(name) as entry:
                items.append(
                    (name, entry.version, codec.to_bytes(entry.engine))
                )
        return codec.store_to_bytes(items)

    @classmethod
    def restore(cls, path) -> "SketchStore":
        """Rebuild a store from a :meth:`snapshot` file.

        The restored store is state-identical: same engines, same
        versions, same query results.
        """
        store = cls()
        path = Path(path)
        with span("store.restore") as attrs:
            data = path.read_bytes()
            try:
                entries = codec.store_from_bytes(data)
            except SketchCodecError as exc:
                raise SketchCodecError(
                    f"corrupt store snapshot {path} "
                    f"({len(data)} bytes): {exc}"
                ) from exc
            for name, version, engine in entries:
                store.register(name, engine, version=version)
            attrs["engines"] = len(store.names())
        return store

    # ------------------------------------------------------------------
    # Fan-in
    # ------------------------------------------------------------------
    def merge_store(self, other: "SketchStore") -> None:
        """Fold every engine of ``other`` into this store.

        Engines present in both stores are merged shard-by-shard through
        the streaming merge algebra (configurations and shard counts must
        match); engines only ``other`` has are adopted.  Either way the
        engines are copied through the codec, so the peer store is left
        untouched and shares no state.  Merged names get version
        ``max(local, peer) + 1`` so cached query results are invalidated.
        """
        for name in other.names():
            with other._read(name) as peer_entry:
                blob = codec.to_bytes(peer_entry.engine)
                peer_version = peer_entry.version
            peer_engine = codec.from_bytes(blob)
            if name not in self:
                self.register(name, peer_engine, version=peer_version)
                continue
            with self._read(name) as entry:
                entry.engine.merge_from(peer_engine)
                entry.version = max(entry.version, peer_version) + 1
                # the read folded the workers' deltas, so the peer state
                # merged into the parent is the whole story
                entry.synced_version = entry.version
                entry.shard_locks.clear()
                if self._wal is not None:
                    # a merge is not replayable from batches — log the
                    # full post-merge state so recovery sees it
                    self._wal.append_engine(
                        name, entry.version, codec.to_bytes(entry.engine)
                    )

    def merge_snapshot(self, path) -> None:
        """Fold a peer's :meth:`snapshot` file into this store."""
        self.merge_store(SketchStore.restore(path))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def planner(self) -> "QueryPlanner":
        """The store's default (version-cached) query planner.

        Built lazily on first use and shared by every serving surface —
        :meth:`query`, the CLI, and the HTTP front-end — so they all see
        one cache and one set of hit/miss counters.
        """
        with self._lock:
            if self._planner is None:
                from repro.service.queries import QueryPlanner

                self._planner = QueryPlanner(self)
            return self._planner

    def query(self, name: str, query):
        """Run a :class:`repro.service.queries.Query` through the store's
        default (version-cached) planner."""
        return self.planner().run(name, query)
