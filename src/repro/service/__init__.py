"""Persistent sketch store and query-serving layer.

The streaming subsystem (:mod:`repro.streaming`) maintains coordinated
sketches in memory; this package turns them into long-lived, queryable
state:

* :mod:`repro.service.codec` — a versioned little-endian binary wire
  format (:func:`to_bytes` / :func:`from_bytes`) for both sketch
  families and full :class:`~repro.streaming.StreamEngine` state.
  Restoration is state-exact: identical snapshots, identical query
  results, bit-identical subsequent updates;
* :mod:`repro.service.store` — :class:`SketchStore`, a registry of named
  engines with thread-safe concurrent ingest (per-shard locking),
  monotone version counters, snapshot/restore to disk, and
  distributed-style fan-in of peer snapshot files through the sketch
  merge algebra;
* :mod:`repro.service.queries` — declarative :class:`Query` objects and
  a :class:`QueryPlanner` that routes distinct-count / sum / dominance /
  L1 / custom queries to the existing :mod:`repro.aggregates` and
  :mod:`repro.batch` estimator paths, memoising results in a
  version-keyed cache that every ingest invalidates;
* :mod:`repro.service.cli` — ``python -m repro.service
  ingest|snapshot|merge|query`` over CSV/JSONL update streams.
"""

from repro.service.codec import from_bytes, to_bytes
from repro.service.queries import Query, QueryPlanner, QueryResult
from repro.service.store import IngestRequest, SketchStore

__all__ = [
    "IngestRequest",
    "Query",
    "QueryPlanner",
    "QueryResult",
    "SketchStore",
    "from_bytes",
    "to_bytes",
]
