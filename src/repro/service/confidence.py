"""Per-query estimate-quality reporting (``cv`` / ``ci90``).

The whole point of the paper's coordinated sketches is that their
estimators come with *analyzable variance*, so confidence is computable
at query time for free.  This module turns a query's sketches and its
point estimate into a quality payload:

========== ==========================================================
query       variance estimator
========== ==========================================================
distinct    exact variance at the plug-in estimate —
            :func:`~repro.aggregates.distinct.distinct_ht_variance`
            for the HT variant, :func:`~repro.aggregates.distinct.
            distinct_l_variance` with the plug-in Jaccard
            ``F11 / (p1 p2) / D`` for the L variant;
sum         single bottom-k instance: the unbiased Horvitz-Thompson
            plug-in ``sum v^2 (1-p)/p^2`` over the sampled keys with
            ``p`` the rank-conditioned inclusion probability (RC
            per-key estimates have zero covariance), plus the paper's
            ``CV <= 1/sqrt(k-2)`` bound; single Poisson instance: the
            same plug-in with the sample's inclusion probabilities.
========== ==========================================================

Everything else — dominance, L1, estimator-weighted multi-instance
sums, custom queries — raises
:class:`~repro.exceptions.ConfidenceUnavailableError`: no variance
estimator applies, and refusing loudly beats reporting a made-up
interval (the same policy as the independence-assumption rejection in
:mod:`repro.streaming.query`).

The reported interval is a normal (CLT) interval, appropriate in the
many-sampled-keys regime the paper targets; ``cv`` is the estimated
coefficient of variation ``sqrt(Var) / estimate`` (omitted when the
estimate is zero).
"""

from __future__ import annotations

import math

from repro.aggregates.distinct import (
    distinct_ht_variance,
    distinct_l_variance,
)
from repro.analysis.confidence import normal_interval
from repro.exceptions import ConfidenceUnavailableError
from repro.streaming.sketch import StreamingBottomK, StreamingPoisson

__all__ = ["CONFIDENCE_LEVEL", "query_confidence"]

#: the reported interval's nominal coverage (the ``ci90`` field)
CONFIDENCE_LEVEL = 0.90


def _refuse(reason: str) -> ConfidenceUnavailableError:
    return ConfidenceUnavailableError(
        f"no variance estimator applies: {reason}; drop the confidence "
        "request for this query"
    )


def _distinct_variance(sketches, query, value) -> float:
    p1 = sketches[0].threshold
    p2 = sketches[1].threshold
    estimate = float(value.estimate)
    if value.estimator == "HT":
        return distinct_ht_variance(estimate, p1, p2)
    if estimate <= 0.0:
        return 0.0
    # plug-in Jaccard: F11 keys are sampled in both instances with
    # probability p1 p2, so F11 / (p1 p2) estimates |N_1 ∩ N_2|
    intersection = value.counts["F11"] / (p1 * p2)
    jaccard = min(1.0, max(0.0, intersection / estimate))
    return distinct_l_variance(estimate, jaccard, p1, p2)


def _ht_plugin_variance(entries, probability_of, predicate) -> float:
    """Unbiased HT plug-in variance ``sum v^2 (1 - p) / p^2`` over the
    sampled keys (zero cross-covariance between per-key estimates)."""
    variance = 0.0
    for key, value in entries.items():
        if predicate is not None and not predicate(key):
            continue
        p = probability_of(key)
        variance += value * value * (1.0 - p) / (p * p)
    return variance


def _sum_confidence(sketches, query) -> tuple[float, dict]:
    if query.estimator is not None or len(sketches) != 1:
        raise _refuse(
            "estimator-weighted multi-instance sums have no plug-in "
            "variance here"
        )
    sketch = sketches[0]
    if isinstance(sketch, StreamingBottomK):
        sample = sketch.to_sample()
        variance = _ht_plugin_variance(
            sample.entries,
            sample.conditional_inclusion_probability,
            query.predicate,
        )
        extra = {}
        if sample.k > 2:
            # the paper's bound on the coefficient of variation of
            # bottom-k subset-sum estimates
            extra["cv_bound"] = 1.0 / math.sqrt(sample.k - 2)
        return variance, extra
    if isinstance(sketch, StreamingPoisson):
        sample = sketch.to_sample()
        probabilities = sample.inclusion_probabilities
        variance = _ht_plugin_variance(
            sample.entries,
            probabilities.__getitem__,
            query.predicate,
        )
        return variance, {}
    raise _refuse(
        f"sum confidence supports streaming sketches, got "
        f"{type(sketch).__name__}"
    )


def query_confidence(sketches, query, value) -> dict:
    """The estimate-quality payload of one executed query.

    ``sketches`` are the merged per-instance sketches the query ran
    on, ``value`` its computed result.  Returns a JSON-encodable dict
    with ``variance``, ``cv`` (``None`` when the estimate is zero) and
    a ``ci90`` normal interval; bottom-k sums additionally carry the
    paper's ``cv_bound``.  Raises
    :class:`~repro.exceptions.ConfidenceUnavailableError` for query
    shapes without an applicable variance estimator.
    """
    extra: dict = {}
    if query.kind == "distinct":
        estimate = float(value.estimate)
        variance = _distinct_variance(sketches, query, value)
    elif query.kind == "sum":
        estimate = float(value)
        variance, extra = _sum_confidence(sketches, query)
    else:
        raise _refuse(
            f"{query.kind!r} queries have no analyzable variance "
            "estimator"
        )
    interval = normal_interval(estimate, variance, CONFIDENCE_LEVEL)
    cv = math.sqrt(variance) / estimate if estimate > 0.0 else None
    return {
        "cv": cv,
        "variance": variance,
        "ci90": {
            "lower": interval.lower,
            "upper": interval.upper,
            "confidence": interval.confidence,
            "method": interval.method,
        },
        **extra,
    }
