"""Variance analysis, Monte-Carlo simulation and sample-size planning."""

from repro.analysis.comparison import EstimatorComparison, compare_estimators
from repro.analysis.confidence import (
    ConfidenceInterval,
    chebyshev_interval,
    normal_interval,
)
from repro.analysis.montecarlo import SimulationResult, simulate_estimator
from repro.analysis.samplesize import (
    distinct_count_coefficient_of_variation,
    required_probability,
    required_sample_size,
)

__all__ = [
    "EstimatorComparison",
    "compare_estimators",
    "ConfidenceInterval",
    "chebyshev_interval",
    "normal_interval",
    "SimulationResult",
    "simulate_estimator",
    "distinct_count_coefficient_of_variation",
    "required_probability",
    "required_sample_size",
]
