"""Monte-Carlo evaluation of estimators.

Used to cross-validate the closed-form and exact-enumeration variances, to
evaluate estimators whose exact variance is awkward to integrate, and by the
examples to illustrate convergence of aggregate estimates.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro._validation import check_rng
from repro.batch.outcome_batch import OutcomeBatch
from repro.core.estimator_base import VectorEstimator
from repro.exceptions import InvalidParameterError
from repro.sampling.dispersed import ObliviousPoissonScheme, PpsPoissonScheme

__all__ = ["SimulationResult", "simulate_estimator"]


@dataclass(frozen=True)
class SimulationResult:
    """Summary of a Monte-Carlo run of an estimator on fixed data.

    Attributes
    ----------
    mean:
        Sample mean of the estimates.
    variance:
        Sample variance (unbiased, ``ddof=1``) of the estimates.
    n_trials:
        Number of simulated outcomes.
    standard_error:
        Standard error of the sample mean.
    min_estimate / max_estimate:
        Range of the observed estimates (useful to confirm nonnegativity).
    """

    mean: float
    variance: float
    n_trials: int
    standard_error: float
    min_estimate: float
    max_estimate: float

    def mean_within(self, target: float, n_sigma: float = 4.0) -> bool:
        """Whether ``target`` lies within ``n_sigma`` standard errors of the
        sample mean — the unbiasedness check used by the test-suite."""
        return abs(self.mean - target) <= n_sigma * max(
            self.standard_error, 1e-12
        )


def simulate_estimator(
    estimator: VectorEstimator,
    scheme,
    values: Sequence[float],
    n_trials: int = 20_000,
    rng: np.random.Generator | int | None = None,
) -> SimulationResult:
    """Simulate ``estimator`` on data ``values`` under ``scheme``.

    ``scheme`` must provide ``sample(values, rng)`` returning a
    :class:`repro.sampling.outcomes.VectorOutcome`; both dispersed schemes
    qualify.  For the two dispersed Poisson schemes the outcomes are drawn
    with one vectorised ``sample_many`` call, assembled into a columnar
    :class:`~repro.batch.OutcomeBatch` and estimated in one batch pass;
    the draws consume the generator stream in the same order as the scalar
    loop, so results are bit-identical for a fixed seed.
    """
    if n_trials <= 1:
        raise InvalidParameterError("n_trials must be at least 2")
    generator = check_rng(rng)
    n_trials = int(n_trials)
    # Exact-type dispatch: a subclass overriding sample() must go through
    # the generic loop, not the stock sample_many() fast path.
    if type(scheme) is ObliviousPoissonScheme:
        mask = scheme.sample_many(values, n_trials, rng=generator)
        batch = OutcomeBatch(
            values=np.broadcast_to(
                np.asarray(values, dtype=np.float64), mask.shape
            ),
            sampled=mask,
        )
        estimates = estimator.estimate_batch(batch)
    elif type(scheme) is PpsPoissonScheme:
        mask, seeds = scheme.sample_many(values, n_trials, rng=generator)
        batch = OutcomeBatch(
            values=np.broadcast_to(
                np.asarray(values, dtype=np.float64), mask.shape
            ),
            sampled=mask,
            seeds=seeds if scheme.known_seeds else None,
        )
        estimates = estimator.estimate_batch(batch)
    else:
        estimates = np.empty(n_trials)
        for index in range(n_trials):
            outcome = scheme.sample(values, rng=generator)
            estimates[index] = estimator.estimate(outcome)
    mean = float(np.mean(estimates))
    variance = float(np.var(estimates, ddof=1))
    return SimulationResult(
        mean=mean,
        variance=variance,
        n_trials=int(n_trials),
        standard_error=float(np.sqrt(variance / n_trials)),
        min_estimate=float(np.min(estimates)),
        max_estimate=float(np.max(estimates)),
    )
