"""Confidence intervals for sum-aggregate estimates.

Unbiased per-key estimates with known (or estimable) variances allow two
standard interval constructions:

* a normal (CLT) interval, appropriate when many sampled keys contribute so
  the aggregate is approximately Gaussian — the regime the paper targets
  ("the relative error decreases with the number of selected keys");
* a distribution-free Chebyshev interval, valid for any number of keys at
  the cost of being wider.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from scipy import stats

from repro._validation import check_nonnegative
from repro.exceptions import InvalidParameterError

__all__ = ["ConfidenceInterval", "normal_interval", "chebyshev_interval"]


@dataclass(frozen=True)
class ConfidenceInterval:
    """A two-sided confidence interval for a nonnegative aggregate.

    Attributes
    ----------
    lower / upper:
        Interval end points (the lower end is clipped at zero because every
        estimated quantity in this library is nonnegative).
    confidence:
        Nominal coverage probability.
    method:
        ``"normal"`` or ``"chebyshev"``.
    """

    lower: float
    upper: float
    confidence: float
    method: str

    @property
    def width(self) -> float:
        """Width of the interval."""
        return self.upper - self.lower

    def contains(self, value: float) -> bool:
        """Whether ``value`` lies inside the interval."""
        return self.lower <= value <= self.upper


def _check_inputs(estimate: float, variance: float, confidence: float) -> None:
    check_nonnegative(variance, "variance")
    if not 0.0 < confidence < 1.0:
        raise InvalidParameterError(
            f"confidence must be in (0, 1), got {confidence}"
        )


def normal_interval(
    estimate: float, variance: float, confidence: float = 0.95
) -> ConfidenceInterval:
    """CLT-based interval ``estimate ± z * sqrt(variance)``."""
    _check_inputs(estimate, variance, confidence)
    z = float(stats.norm.ppf(0.5 + confidence / 2.0))
    margin = z * math.sqrt(variance)
    return ConfidenceInterval(
        lower=max(0.0, float(estimate) - margin),
        upper=float(estimate) + margin,
        confidence=confidence,
        method="normal",
    )


def chebyshev_interval(
    estimate: float, variance: float, confidence: float = 0.95
) -> ConfidenceInterval:
    """Distribution-free interval ``estimate ± sqrt(variance / (1 - c))``."""
    _check_inputs(estimate, variance, confidence)
    margin = math.sqrt(variance / (1.0 - confidence))
    return ConfidenceInterval(
        lower=max(0.0, float(estimate) - margin),
        upper=float(estimate) + margin,
        confidence=confidence,
        method="chebyshev",
    )
