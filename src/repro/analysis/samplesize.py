"""Sample-size planning for distinct-count estimation (Figure 6).

Figure 6 of the paper plots, as a function of the per-instance set size
``n``, the sample size ``s = p * n`` required so that the distinct-count
estimator reaches a target coefficient of variation (cv), for the HT and the
L estimators and several values of the Jaccard coefficient.

With ``|N_1| = |N_2| = n``, Jaccard ``J`` and distinct count
``N = 2 n / (1 + J)``:

* ``Var[HT] = N (1 / p^2 - 1)``;
* ``Var[L]  = N [ J Var[OR^L | (1,1)] + (1 - J) Var[OR^L | (1,0)] ]``,

and ``cv = sqrt(Var) / N``.  Both variances are decreasing in ``p``, so the
minimal ``p`` meeting the cv target is found by bisection.
"""

from __future__ import annotations

from repro._validation import check_positive, check_unit_interval
from repro.aggregates.distinct import distinct_ht_variance, distinct_l_variance
from repro.exceptions import InvalidParameterError

__all__ = [
    "distinct_count_coefficient_of_variation",
    "required_probability",
    "required_sample_size",
]


def distinct_count_coefficient_of_variation(
    estimator: str, n_per_set: float, jaccard: float, probability: float
) -> float:
    """Coefficient of variation of a distinct-count estimator.

    Parameters
    ----------
    estimator:
        ``"HT"`` or ``"L"``.
    n_per_set:
        Size ``n`` of each of the two (equal-sized) key sets.
    jaccard:
        Jaccard coefficient of the two sets.
    probability:
        Per-instance sampling probability ``p`` (equal for both instances).
    """
    n_per_set = check_positive(n_per_set, "n_per_set")
    jaccard = check_unit_interval(jaccard, "jaccard")
    distinct = 2.0 * n_per_set / (1.0 + jaccard)
    if estimator.upper() == "HT":
        variance = distinct_ht_variance(distinct, probability, probability)
    elif estimator.upper() == "L":
        variance = distinct_l_variance(
            distinct, jaccard, probability, probability
        )
    else:
        raise InvalidParameterError(
            f"estimator must be 'HT' or 'L', got {estimator!r}"
        )
    return (variance ** 0.5) / distinct


def required_probability(
    estimator: str,
    n_per_set: float,
    jaccard: float,
    target_cv: float,
    tolerance: float = 1e-12,
) -> float:
    """Smallest sampling probability achieving ``target_cv``.

    Returns 1.0 when even sampling everything does not reach the target
    (which cannot happen for these estimators since ``p = 1`` gives zero
    variance, but the guard keeps the bisection well defined).
    """
    target_cv = check_positive(target_cv, "target_cv")

    def cv(probability: float) -> float:
        return distinct_count_coefficient_of_variation(
            estimator, n_per_set, jaccard, probability
        )

    low, high = 1e-12, 1.0
    if cv(high) > target_cv:  # pragma: no cover - defensive
        return 1.0
    if cv(low) <= target_cv:
        return low
    while high - low > tolerance * max(high, 1.0):
        mid = 0.5 * (low + high)
        if cv(mid) > target_cv:
            low = mid
        else:
            high = mid
    return high


def required_sample_size(
    estimator: str, n_per_set: float, jaccard: float, target_cv: float
) -> float:
    """Expected per-instance sample size ``s = p * n`` achieving the target
    coefficient of variation (the quantity plotted in Figure 6)."""
    probability = required_probability(estimator, n_per_set, jaccard, target_cv)
    return probability * float(n_per_set)
