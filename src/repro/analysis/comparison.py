"""Side-by-side comparison of estimators on a set of data vectors.

Produces the kind of table the paper uses to argue dominance: for each data
vector, the exact variance of each estimator (computed by enumerating the
weight-oblivious outcome space) and the ratio to a baseline estimator.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field

from repro.core.estimator_base import VectorEstimator
from repro.core.variance import exact_moments
from repro.exceptions import InvalidParameterError
from repro.sampling.dispersed import ObliviousPoissonScheme

__all__ = ["EstimatorComparison", "compare_estimators"]


@dataclass(frozen=True)
class EstimatorComparison:
    """Exact-variance comparison of several estimators.

    Attributes
    ----------
    rows:
        One entry per data vector: ``{"vector": ..., "variances": {name:
        var}, "means": {name: mean}}``.
    baseline:
        Name of the baseline estimator used for the ratio columns.
    """

    rows: tuple[Mapping, ...]
    baseline: str
    estimator_names: tuple[str, ...] = field(default=())

    def variance_ratios(self, name: str) -> list[float]:
        """``Var[baseline] / Var[name]`` for every data vector (``inf`` when
        the competitor has zero variance and the baseline does not)."""
        ratios = []
        for row in self.rows:
            baseline_var = row["variances"][self.baseline]
            competitor_var = row["variances"][name]
            if competitor_var == 0.0:
                ratios.append(
                    float("inf") if baseline_var > 0.0 else 1.0
                )
            else:
                ratios.append(baseline_var / competitor_var)
        return ratios

    def dominates_baseline(self, name: str, tolerance: float = 1e-9) -> bool:
        """Whether ``name`` has no larger variance than the baseline on every
        data vector of the comparison."""
        for row in self.rows:
            if row["variances"][name] > row["variances"][self.baseline] + tolerance:
                return False
        return True

    def as_table(self) -> list[str]:
        """Plain-text table (one line per data vector)."""
        names = list(self.estimator_names)
        header = "vector".ljust(24) + "".join(
            name.rjust(14) for name in names
        )
        lines = [header]
        for row in self.rows:
            cells = "".join(
                f"{row['variances'][name]:14.4f}" for name in names
            )
            lines.append(f"{str(row['vector']):<24}{cells}")
        return lines


def compare_estimators(
    estimators: Mapping[str, VectorEstimator],
    scheme: ObliviousPoissonScheme,
    vectors: Sequence[Sequence[float]],
    baseline: str | None = None,
) -> EstimatorComparison:
    """Exact mean/variance of each estimator on each data vector."""
    if not estimators:
        raise InvalidParameterError("at least one estimator is required")
    names = tuple(estimators)
    if baseline is None:
        baseline = names[0]
    if baseline not in estimators:
        raise InvalidParameterError(
            f"baseline {baseline!r} is not among the estimators"
        )
    rows = []
    for vector in vectors:
        vector = tuple(float(v) for v in vector)
        means = {}
        variances = {}
        for name, estimator in estimators.items():
            mean, variance = exact_moments(estimator, scheme, vector)
            means[name] = mean
            variances[name] = variance
        rows.append({"vector": vector, "means": means, "variances": variances})
    return EstimatorComparison(
        rows=tuple(rows), baseline=baseline, estimator_names=names
    )
