"""Change detection over sensor measurements collected in multiple periods.

Battery-constrained sensors report only a weight-oblivious Poisson sample of
their readings in each period.  We estimate, over all sensors, the sum of
per-sensor maxima across four periods (a peak-load / anomaly indicator) with
the uniform-probability ``max^(L)`` estimator of Theorem 4.2, and the L1
distance between consecutive periods with the HT range estimator.

Run with:  python examples/sensor_change_detection.py
"""

from __future__ import annotations

import numpy as np

from repro.aggregates.distance import l1_distance_ht
from repro.aggregates.sum_estimator import sum_aggregate_oblivious
from repro.core.functions import maximum
from repro.core.max_oblivious import MaxObliviousHT, MaxObliviousL
from repro.datasets.synthetic import sensor_measurements
from repro.sampling.seeds import SeedAssigner


def main() -> None:
    n_periods = 4
    probability = 0.35
    dataset = sensor_measurements(
        n_sensors=2000, n_periods=n_periods, spike_probability=0.03, rng=9
    )
    labels = dataset.instance_labels
    probabilities = (probability,) * n_periods

    truth = dataset.max_dominance(labels)
    print(f"sensors: {len(dataset.active_keys())}, periods: {n_periods}")
    print(f"true sum of per-sensor maxima: {truth:,.1f}\n")

    estimators = {
        "max^(HT)": MaxObliviousHT(probabilities),
        "max^(L) (Theorem 4.2 coefficients)": MaxObliviousL(probabilities),
    }
    print(f"per-period sampling probability: {probability}")
    for name, estimator in estimators.items():
        errors = []
        for salt in range(20):
            result = sum_aggregate_oblivious(
                dataset,
                labels=labels,
                probabilities=probabilities,
                estimator=estimator,
                seed_assigner=SeedAssigner(salt=salt),
                true_function=maximum,
            )
            errors.append((result.estimate - truth) / truth)
        rmse = float(np.sqrt(np.mean(np.square(errors))))
        print(f"  {name:<36} relative RMSE over 20 samples: {rmse:.4f}")

    print("\nL1 distance (total measurement change) between consecutive "
          "periods, HT estimate vs truth:")
    for first, second in zip(labels, labels[1:]):
        result = l1_distance_ht(
            dataset, (first, second), (probability, probability),
            SeedAssigner(salt=1),
        )
        print(f"  {first} -> {second}: estimate {result.estimate:10,.1f}   "
              f"truth {result.true_value:10,.1f}")

    print(
        "\nBecause the max^(L) estimator uses every sampled reading (not "
        "only sensors sampled in all periods), it needs far fewer "
        "transmissions for the same accuracy — exactly the battery saving "
        "the paper's sensor scenario targets."
    )


if __name__ == "__main__":
    main()
