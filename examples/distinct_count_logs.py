"""Distinct resources across two request logs (Section 8.1 application).

Two daily request logs record which resources (URLs) were active.  Each day
is summarised independently by a small weighted sample whose seeds come from
a hash function (known seeds).  We estimate the number of distinct resources
active on either day — the sum aggregate of Boolean OR — with the classic HT
estimator and the paper's L estimator, and compare their accuracy and the
sample size each needs for a target precision.

Run with:  python examples/distinct_count_logs.py
"""

from __future__ import annotations

import numpy as np

from repro.aggregates.distinct import (
    distinct_count_ht,
    distinct_count_l,
    distinct_ht_variance,
    distinct_l_variance,
)
from repro.analysis.samplesize import required_sample_size
from repro.datasets.synthetic import set_pair_with_jaccard
from repro.sampling.seeds import SeedAssigner


def main() -> None:
    n_per_day = 50_000
    jaccard = 0.7          # the two days share most of their resources
    probability = 0.02     # 2% sampling rate

    day1, day2 = set_pair_with_jaccard(n_per_day, jaccard)
    truth = len(day1 | day2)
    print(f"active resources: day1 = {len(day1)}, day2 = {len(day2)}, "
          f"distinct = {truth}\n")

    errors_ht, errors_l = [], []
    all_keys = sorted(day1 | day2)
    for salt in range(30):
        seeds = SeedAssigner(salt=salt)
        seeds1 = seeds.seed_map(all_keys, instance="day1")
        seeds2 = seeds.seed_map(all_keys, instance="day2")
        sample1 = {k for k in day1 if seeds1[k] <= probability}
        sample2 = {k for k in day2 if seeds2[k] <= probability}
        ht = distinct_count_ht(sample1, sample2, probability, probability,
                               seeds1, seeds2)
        l = distinct_count_l(sample1, sample2, probability, probability,
                             seeds1, seeds2)
        errors_ht.append((ht.estimate - truth) / truth)
        errors_l.append((l.estimate - truth) / truth)
        if salt == 0:
            print("category breakdown of the first sample pair "
                  f"(|S1| = {len(sample1)}, |S2| = {len(sample2)}):")
            for name, count in l.counts.items():
                print(f"  {name:4} {count}")
            print(f"  HT estimate: {ht.estimate:12.1f}")
            print(f"  L  estimate: {l.estimate:12.1f}")
            print(f"  truth      : {truth:12d}\n")

    print("relative RMSE over 30 independent sample pairs:")
    print(f"  HT: {float(np.sqrt(np.mean(np.square(errors_ht)))):.4f}")
    print(f"  L : {float(np.sqrt(np.mean(np.square(errors_l)))):.4f}")

    print("\nanalytic standard deviations at this sampling rate:")
    print(f"  HT: {np.sqrt(distinct_ht_variance(truth, probability, probability)):,.0f}")
    print(f"  L : {np.sqrt(distinct_l_variance(truth, jaccard, probability, probability)):,.0f}")

    print("\nper-day sample size needed for a 5% coefficient of variation:")
    for estimator in ("HT", "L"):
        size = required_sample_size(estimator, n_per_day, jaccard, 0.05)
        print(f"  {estimator:2}: {size:,.0f} keys")


if __name__ == "__main__":
    main()
