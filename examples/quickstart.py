"""Quickstart: estimating the maximum of a dispersed value vector.

A key takes the values (8, 3) in two instances that are sampled
independently (weight-obliviously) with probability 1/2 each.  We compare
the classical Horvitz-Thompson estimator with the paper's Pareto-optimal
``max^(L)`` and ``max^(U)`` estimators: all three are unbiased, but the
partial-information estimators have markedly lower variance.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import MaxObliviousHT, MaxObliviousL, MaxObliviousU
from repro.analysis.montecarlo import simulate_estimator
from repro.core.variance import exact_moments
from repro.sampling.dispersed import ObliviousPoissonScheme


def main() -> None:
    probabilities = (0.5, 0.5)
    data = (8.0, 3.0)

    scheme = ObliviousPoissonScheme(probabilities)
    estimators = {
        "max^(HT)": MaxObliviousHT(probabilities),
        "max^(L)": MaxObliviousL(probabilities),
        "max^(U)": MaxObliviousU(probabilities),
    }

    print(f"data vector v = {data},  true max(v) = {max(data)}\n")

    print("Exact moments (enumerating the 4 possible outcomes):")
    print(f"{'estimator':<10} {'E[estimate]':>12} {'Var[estimate]':>14}")
    for name, estimator in estimators.items():
        mean, variance = exact_moments(estimator, scheme, data)
        print(f"{name:<10} {mean:>12.4f} {variance:>14.4f}")

    print("\nOne concrete sampled outcome and the resulting estimates:")
    outcome = scheme.sample(data, rng=7)
    sampled = sorted(i + 1 for i in outcome.sampled)
    print(f"  sampled entries: {sampled} "
          f"with values {[outcome.values[i - 1] for i in sampled]}")
    for name, estimator in estimators.items():
        print(f"  {name:<10} -> {estimator.estimate(outcome):.4f}")

    print("\nMonte-Carlo check (20,000 independent samples):")
    for name, estimator in estimators.items():
        result = simulate_estimator(estimator, scheme, data,
                                    n_trials=20_000, rng=1)
        print(f"  {name:<10} mean = {result.mean:7.4f}   "
              f"variance = {result.variance:8.4f}   "
              f"min estimate = {result.min_estimate:.4f}")

    print(
        "\nBoth max^(L) and max^(U) are unbiased and nonnegative and "
        "dominate the HT estimator; max^(L) is the better choice when the "
        "two values are usually close, max^(U) when one of them is often "
        "zero."
    )


if __name__ == "__main__":
    main()
