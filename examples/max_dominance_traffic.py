"""Max-dominance norm of two hours of network traffic (Section 8.2).

Each hour assigns a flow count to every active destination address and is
summarised independently by a Poisson PPS sample with hash-generated (known)
seeds.  The max-dominance norm — the sum over destinations of the larger of
the two hourly counts — measures peak resource usage and is estimated per
key with ``max^(HT)`` and with the optimal ``max^(L)`` of Section 5.2.

Run with:  python examples/max_dominance_traffic.py
"""

from __future__ import annotations

from repro.aggregates.dominance import (
    max_dominance_estimates,
    max_dominance_exact_variances,
    tau_star_for_sampling_fraction,
)
from repro.datasets.synthetic import zipf_traffic_pair
from repro.sampling.seeds import SeedAssigner


def main() -> None:
    dataset = zipf_traffic_pair(
        n_keys_per_instance=4000,
        n_common_keys=2400,
        total_flows=1.0e5,
        rng=42,
    )
    labels = ("hour1", "hour2")
    truth = dataset.max_dominance(labels)
    print(f"distinct destinations: {dataset.distinct_count(labels)}")
    print(f"true max-dominance norm: {truth:,.0f}\n")

    print("fraction  tau*(h1)   tau*(h2)   HT estimate   L estimate   "
          "var[HT]/var[L]")
    for fraction in (0.02, 0.05, 0.1, 0.25):
        tau_star = tuple(
            tau_star_for_sampling_fraction(
                dataset.instance(label).values(), fraction
            )
            for label in labels
        )
        result = max_dominance_estimates(
            dataset, labels, tau_star, SeedAssigner(salt=3)
        )
        var_ht, var_l = max_dominance_exact_variances(
            dataset, labels, tau_star, grid_size=501
        )
        print(
            f"{fraction:8.2%}  {tau_star[0]:9.2f}  {tau_star[1]:9.2f}  "
            f"{result.ht:12,.0f}  {result.l:11,.0f}  "
            f"{var_ht / var_l:14.2f}"
        )

    print(
        "\nThe L estimator exploits the partial information revealed by the "
        "known seeds (upper bounds on unsampled counts) and consistently "
        "halves the variance of the HT estimator or better, matching the "
        "2.45-2.7 ratio the paper reports on its traffic traces."
    )


if __name__ == "__main__":
    main()
