"""Concurrent HTTP load against the sketch server, in one process.

Boots a :class:`repro.server.SketchServer` on an ephemeral port, drives
it with four async clients interleaving ingest and query requests
through :class:`repro.server.AsyncSketchClient`, and then shows the
serving guarantees:

* the engine built through concurrent HTTP ingest is *bit-exact equal*
  to a serial in-process ingest of the same batches;
* repeated queries are served from the version-keyed cache until the
  next ingest invalidates them;
* ``/metrics`` reports the ingest throughput, the cache hit rate, and a
  cheap per-engine probe (version, change tick, retained keys).

Run with:  PYTHONPATH=src python examples/server_load_demo.py
"""

from __future__ import annotations

import asyncio

import numpy as np

from repro.sampling.seeds import SeedAssigner
from repro.server import AsyncSketchClient, ServerConfig, SketchServer
from repro.service import Query, SketchStore

N_CLIENTS = 4
N_BATCHES = 32
BATCH_ROWS = 500
INSTANCES = ("monday", "tuesday")


def make_store() -> SketchStore:
    store = SketchStore()
    store.create(
        "traffic",
        "poisson",
        threshold=0.05,
        seed_assigner=SeedAssigner(salt=7),
        n_shards=4,
    )
    return store


def make_batches() -> list:
    rng = np.random.default_rng(20110613)
    n_rows = N_BATCHES * BATCH_ROWS
    keys = rng.choice(10**9, size=n_rows, replace=False)
    values = rng.random(n_rows) * 5.0 + 0.1
    return [
        (
            INSTANCES[index % len(INSTANCES)],
            [int(key) for key in keys[start : start + BATCH_ROWS]],
            [float(value) for value in values[start : start + BATCH_ROWS]],
        )
        for index, start in enumerate(range(0, n_rows, BATCH_ROWS))
    ]


async def worker(port: int, batches: list) -> int:
    """Ingest a slice of the stream, querying between batches."""
    n_requests = 0
    async with AsyncSketchClient(host="127.0.0.1", port=port) as client:
        for instance, keys, values in batches:
            await client.ingest("traffic", instance, keys, values)
            result = await client.query("traffic", "sum", [instance])
            n_requests += 2
            assert result["value"] > 0
    return n_requests


async def drive(store: SketchStore, batches: list) -> dict:
    server = SketchServer(store, ServerConfig(port=0, ingest_threads=4))
    await server.start()
    print(f"serving on 127.0.0.1:{server.port}")
    try:
        async with AsyncSketchClient(host="127.0.0.1", port=server.port) as client:
            # seed both instances so queries never race instance creation
            for instance, keys, values in batches[: len(INSTANCES)]:
                await client.ingest("traffic", instance, keys, values)
            rest = batches[len(INSTANCES) :]
            totals = await asyncio.gather(
                *(worker(server.port, rest[i::N_CLIENTS]) for i in range(N_CLIENTS))
            )
            print(f"{N_CLIENTS} clients made {sum(totals) + 2} requests")

            cold = await client.query("traffic", "distinct", list(INSTANCES))
            warm = await client.query("traffic", "distinct", list(INSTANCES))
            print(
                f"distinct estimate {cold['value']['estimate']:.1f} "
                f"(cold from_cache={cold['from_cache']}, "
                f"repeat from_cache={warm['from_cache']})"
            )
            metrics = await client.metrics()
            ingest, cache = metrics["ingest"], metrics["query_cache"]
            print(
                f"ingest: {ingest['rows']} rows in {ingest['batches']} "
                f"batches ({ingest['rows_per_busy_second']:,.0f} rows/busy-s); "
                f"cache hit rate {cache['hit_rate']:.0%}"
            )
            print(f"engine probe: {metrics['engines']['traffic']}")
    finally:
        await server.shutdown()
    return metrics


def main() -> None:
    batches = make_batches()
    store = make_store()
    asyncio.run(drive(store, batches))

    serial = make_store()
    for instance, keys, values in batches:
        serial.ingest("traffic", instance, keys, values)
    assert store.engine("traffic") == serial.engine("traffic")
    print("concurrent HTTP ingest == serial ingest: bit-exact")

    live = store.query("traffic", Query.distinct(*INSTANCES))
    reference = serial.query("traffic", Query.distinct(*INSTANCES))
    assert float(live.value.estimate) == float(reference.value.estimate)
    print(f"served estimate matches offline planner: {float(live):,.1f}")


if __name__ == "__main__":
    main()
