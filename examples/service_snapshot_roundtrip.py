"""Snapshot round-trip through the persistent sketch service.

Builds a store of coordinated Poisson sketches over two traffic
instances, snapshots it to disk through the versioned binary codec,
restores it into a fresh process-like state, and shows that the restored
store is *state-identical*: same engines, same version counters, and the
same query results — here distinct count and L1 distance — with the
second query served from the version-keyed cache.

Run with:  PYTHONPATH=src python examples/service_snapshot_roundtrip.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro.sampling.seeds import SeedAssigner
from repro.service import Query, SketchStore


def main() -> None:
    rng = np.random.default_rng(20110613)
    keys = rng.choice(100_000, size=30_000, replace=False)
    values = rng.random(30_000) * 5.0 + 0.1

    store = SketchStore()
    store.create(
        "traffic", "poisson", threshold=0.25,
        seed_assigner=SeedAssigner(salt=7), n_shards=8,
    )
    store.ingest("traffic", "monday", keys[:20_000], values[:20_000])
    store.ingest("traffic", "tuesday", keys[10_000:], values[10_000:])
    print(f"ingested 40,000 updates; version = {store.version('traffic')}")

    with tempfile.TemporaryDirectory() as tmp:
        path = store.snapshot(Path(tmp) / "traffic.bin")
        print(f"snapshot: {path.stat().st_size:,} bytes")
        restored = SketchStore.restore(path)

    assert restored.engine("traffic") == store.engine("traffic")
    assert restored.version("traffic") == store.version("traffic")
    print("restored store is state-identical to the live one")

    distinct = Query.distinct("monday", "tuesday")
    l1 = Query.l1("monday", "tuesday")
    for name, query in (("distinct count", distinct), ("L1 distance", l1)):
        live = store.query("traffic", query)
        back = restored.query("traffic", query)
        assert float(live) == float(back)
        print(f"{name:>14}: {float(live):12.1f}   (live == restored)")

    cached = restored.query("traffic", distinct)
    print(f"repeat query served from cache: {cached.from_cache}")

    restored.ingest("traffic", "monday", [999_999], [1.0])
    fresh = restored.query("traffic", distinct)
    print(
        "after one more ingest the cache is invalidated: "
        f"from_cache={fresh.from_cache}, version {cached.version} -> "
        f"{fresh.version}"
    )


if __name__ == "__main__":
    main()
